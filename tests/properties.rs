//! Randomized property tests over the core data structures and invariants:
//! order-preserving key encoding, LIKE matching, MVCC visibility against an
//! oracle, columnar-vs-row equivalence, aggregate partial-merge
//! associativity, and partition-routing determinism.
//!
//! Inputs are drawn from a seeded `StdRng`, so every run exercises the same
//! cases — failures reproduce deterministically (proptest is unavailable in
//! the offline build environment).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use polardbx_common::{Key, Row, TrxId, Value};

const CASES: usize = 200;

fn rng_for(test: &str) -> StdRng {
    // Stable per-test seed so tests stay independent of execution order.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

fn rand_string(rng: &mut StdRng, alphabet: &[u8], max_len: usize) -> String {
    let n = rng.gen_range(0..=max_len);
    (0..n)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())] as char)
        .collect()
}

/// Key encoding preserves order for same-typed tuples: byte-wise comparison
/// of encodings equals SQL comparison of the value tuples.
#[test]
fn key_encoding_is_order_preserving() {
    let mut rng = rng_for("key_encoding_is_order_preserving");
    for _ in 0..CASES {
        let kinds: Vec<u8> = (0..rng.gen_range(1..4)).map(|_| rng.gen_range(0..4)).collect();
        let gen_tuple = |rng: &mut StdRng| -> Vec<Value> {
            kinds
                .iter()
                .map(|&k| match k {
                    0 => Value::Int(rng.gen_range(-1000..1000)),
                    1 => Value::Double(rng.gen_range(-100.0..100.0)),
                    2 => {
                        let n = rng.gen_range(0..6);
                        Value::Str(
                            (0..n).map(|_| rng.gen_range(b'a'..=b'e') as char).collect(),
                        )
                    }
                    _ => Value::Date(rng.gen_range(-500..500)),
                })
                .collect()
        };
        let a = gen_tuple(&mut rng);
        let b = gen_tuple(&mut rng);
        let ka = Key::encode(&a);
        let kb = Key::encode(&b);
        let tuple_ord = a
            .iter()
            .zip(&b)
            .map(|(x, y)| x.cmp(y))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal);
        assert_eq!(ka.cmp(&kb), tuple_ord, "a={a:?} b={b:?}");
    }
}

/// Encoding round-trips every value.
#[test]
fn key_encoding_roundtrips() {
    let mut rng = rng_for("key_encoding_roundtrips");
    for _ in 0..CASES {
        let v = match rng.gen_range(0u8..4) {
            0 => Value::Int(rng.gen()),
            1 => Value::Double(rng.gen_range(-1e15..1e15)),
            2 => Value::Bytes((0..rng.gen_range(0..20)).map(|_| rng.gen()).collect()),
            _ => Value::Date(rng.gen()),
        };
        let vals = vec![v.clone(), Value::Null, v];
        assert_eq!(Key::encode(&vals).decode(), vals);
    }
}

/// LIKE with only `%`/`_` wildcards agrees with a reference matcher.
#[test]
fn like_agrees_with_reference() {
    fn reference(s: &str, p: &str) -> bool {
        // Classic DP.
        let (s, p): (Vec<char>, Vec<char>) = (s.chars().collect(), p.chars().collect());
        let mut dp = vec![vec![false; p.len() + 1]; s.len() + 1];
        dp[0][0] = true;
        for j in 1..=p.len() {
            dp[0][j] = p[j - 1] == '%' && dp[0][j - 1];
        }
        for i in 1..=s.len() {
            for j in 1..=p.len() {
                dp[i][j] = match p[j - 1] {
                    '%' => dp[i - 1][j] || dp[i][j - 1],
                    '_' => dp[i - 1][j - 1],
                    c => c == s[i - 1] && dp[i - 1][j - 1],
                };
            }
        }
        dp[s.len()][p.len()]
    }
    let mut rng = rng_for("like_agrees_with_reference");
    for _ in 0..CASES * 5 {
        let s = rand_string(&mut rng, b"ab", 8);
        let p = rand_string(&mut rng, b"ab%_", 6);
        assert_eq!(
            polardbx_sql::expr::like_match(&s, &p),
            reference(&s, &p),
            "s={s:?} p={p:?}"
        );
    }
}

/// MVCC visibility matches a timestamp oracle: after a sequence of committed
/// writes at increasing timestamps, a read at any snapshot sees exactly the
/// newest version at or before it.
#[test]
fn mvcc_visibility_matches_oracle() {
    use polardbx_common::{TableId, TenantId};
    use polardbx_storage::{StorageEngine, WriteOp};
    use std::collections::HashMap;

    let mut rng = rng_for("mvcc_visibility_matches_oracle");
    for _ in 0..CASES / 4 {
        let ops: Vec<(i64, u8)> = (0..rng.gen_range(1..40))
            .map(|_| (rng.gen_range(0i64..6), rng.gen_range(0u8..3)))
            .collect();
        let probe_key = rng.gen_range(0i64..6);
        let probe_ts_idx = rng.gen_range(0usize..40);

        let engine = StorageEngine::in_memory();
        engine.create_table(TableId(1), TenantId(1));
        // Oracle: key -> Vec<(commit_ts, Option<row>)>
        let mut oracle: HashMap<i64, Vec<(u64, Option<Row>)>> = HashMap::new();
        let mut ts = 0u64;
        for (i, (k, op)) in ops.iter().enumerate() {
            ts += 10;
            let trx = TrxId(1000 + i as u64);
            let key = Key::encode(&[Value::Int(*k)]);
            let exists = oracle
                .get(k)
                .and_then(|v| v.last())
                .map(|(_, r)| r.is_some())
                .unwrap_or(false);
            let row = Row::new(vec![Value::Int(*k), Value::Int(ts as i64)]);
            engine.begin(trx, ts - 1);
            let action: Option<Option<Row>> = match op {
                0 if !exists => {
                    engine
                        .write(trx, TableId(1), key, WriteOp::Insert(row.clone()))
                        .unwrap();
                    Some(Some(row))
                }
                1 if exists => {
                    engine
                        .write(trx, TableId(1), key, WriteOp::Update(row.clone()))
                        .unwrap();
                    Some(Some(row))
                }
                2 if exists => {
                    engine.write(trx, TableId(1), key, WriteOp::Delete).unwrap();
                    Some(None)
                }
                _ => {
                    engine.abort(trx);
                    None
                }
            };
            if let Some(new_state) = action {
                engine.commit(trx, ts).unwrap();
                oracle.entry(*k).or_default().push((ts, new_state));
            }
        }
        // Probe at an arbitrary snapshot.
        let probe_ts = (probe_ts_idx as u64 + 1) * 5;
        let got = engine
            .read(TableId(1), &Key::encode(&[Value::Int(probe_key)]), probe_ts, None)
            .unwrap();
        let expect = oracle
            .get(&probe_key)
            .and_then(|versions| {
                versions
                    .iter()
                    .rev()
                    .find(|(cts, _)| *cts <= probe_ts)
                    .map(|(_, r)| r.clone())
            })
            .flatten();
        assert_eq!(got, expect);
    }
}

/// Column-index snapshots agree with a row-store oracle across a random op
/// sequence at every commit timestamp.
#[test]
fn columnar_matches_row_oracle() {
    use polardbx_columnar::ColumnIndex;
    use polardbx_common::DataType;
    use std::collections::BTreeMap;

    let mut rng = rng_for("columnar_matches_row_oracle");
    for _ in 0..CASES / 4 {
        let ops: Vec<(i64, bool)> = (0..rng.gen_range(1..30))
            .map(|_| (rng.gen_range(0i64..5), rng.gen_bool(0.5)))
            .collect();
        let index = ColumnIndex::new(vec![DataType::Int, DataType::Int]);
        let mut oracle: BTreeMap<i64, i64> = BTreeMap::new();
        let mut ts = 0u64;
        let mut checkpoints: Vec<(u64, BTreeMap<i64, i64>)> = Vec::new();
        for (i, (k, is_put)) in ops.iter().enumerate() {
            ts += 1;
            let key = Key::encode(&[Value::Int(*k)]);
            if *is_put {
                let row = Row::new(vec![Value::Int(*k), Value::Int(i as i64)]);
                index.apply_put(TrxId(i as u64), ts, key, &row).unwrap();
                oracle.insert(*k, i as i64);
            } else {
                index.apply_delete(TrxId(i as u64), ts, &key);
                oracle.remove(k);
            }
            checkpoints.push((ts, oracle.clone()));
        }
        for (ts, expected) in checkpoints {
            let snap = index.snapshot(ts);
            let mut got: BTreeMap<i64, i64> = BTreeMap::new();
            for pos in 0..snap.len() {
                let row = snap.row(pos);
                got.insert(
                    row.get(0).unwrap().as_int().unwrap(),
                    row.get(1).unwrap().as_int().unwrap(),
                );
            }
            assert_eq!(got, expected, "at snapshot {ts}");
        }
    }
}

/// Aggregate partial/merge evaluation is equivalent to single-pass
/// evaluation regardless of how the input is split (the MPP two-phase
/// aggregate correctness property).
#[test]
fn agg_merge_is_split_invariant() {
    use polardbx_executor::operators::AggState;
    use polardbx_sql::expr::AggFunc;
    use polardbx_sql::plan::AggSpec;

    let mut rng = rng_for("agg_merge_is_split_invariant");
    for _ in 0..CASES {
        let values: Vec<i64> = (0..rng.gen_range(1..50))
            .map(|_| rng.gen_range(-1000i64..1000))
            .collect();
        let split = rng.gen_range(0usize..50) % values.len();
        for func in [AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max] {
            let spec = AggSpec { func, arg: None, distinct: false };
            let mut single = AggState::new(&spec);
            for v in &values {
                single.update(Some(&Value::Int(*v)));
            }
            let (a, b) = values.split_at(split);
            let mut pa = AggState::new(&spec);
            for v in a {
                pa.update(Some(&Value::Int(*v)));
            }
            let mut pb = AggState::new(&spec);
            for v in b {
                pb.update(Some(&Value::Int(*v)));
            }
            pa.merge(&pb);
            assert_eq!(single.finish(), pa.finish(), "func {func:?}");
        }
    }
}

/// Hash partitioning is deterministic, in-bounds and spread.
#[test]
fn partition_routing_sound() {
    use polardbx_common::{ColumnDef, DataType, TableId, TableSchema};
    let mut rng = rng_for("partition_routing_sound");
    for _ in 0..CASES / 4 {
        let ids: Vec<i64> = (0..rng.gen_range(1..200)).map(|_| rng.gen()).collect();
        let shards = rng.gen_range(1u32..64);
        let schema = TableSchema::hash_on_pk(
            TableId(1),
            "t",
            vec![ColumnDef::new("id", DataType::Int).not_null()],
            vec!["id".into()],
            shards,
        )
        .unwrap();
        for id in &ids {
            let s1 = schema.shard_of_key(&[Value::Int(*id)]);
            let s2 = schema.shard_of_key(&[Value::Int(*id)]);
            assert_eq!(s1, s2);
            assert!(s1 < shards);
        }
    }
}

/// The SQL lexer+parser never panic on arbitrary input — they return
/// structured errors.
#[test]
fn parser_never_panics() {
    let mut rng = rng_for("parser_never_panics");
    for _ in 0..CASES * 5 {
        let n = rng.gen_range(0..80);
        let input: String = (0..n)
            .map(|_| {
                // Mostly printable ASCII, occasionally arbitrary unicode.
                if rng.gen_bool(0.9) {
                    rng.gen_range(0x20u8..0x7F) as char
                } else {
                    char::from_u32(rng.gen_range(0u32..0xD7FF)).unwrap_or('?')
                }
            })
            .collect();
        let _ = polardbx_sql::parse(&input);
    }
}

/// Parsed expressions evaluate consistently with operator precedence:
/// `a + b * c` equals `a + (b * c)` computed manually.
#[test]
fn expression_precedence_semantics() {
    use polardbx_sql::{parse, Statement};
    let mut rng = rng_for("expression_precedence_semantics");
    for _ in 0..CASES {
        let (a, b, c) = (
            rng.gen_range(-100i64..100),
            rng.gen_range(-100i64..100),
            rng.gen_range(-100i64..100),
        );
        let sql = format!("SELECT {a} + {b} * {c} FROM t");
        let Statement::Select(sel) = parse(&sql).unwrap() else { unreachable!() };
        let polardbx_sql::ast::SelectItem::Expr { expr, .. } = &sel.items[0] else {
            unreachable!()
        };
        let got = expr.eval(&Row::empty()).unwrap();
        assert_eq!(got, Value::Int(a + b * c));
    }
}

/// BETWEEN is equivalent to the conjunction of its bounds.
#[test]
fn between_equals_conjunction() {
    use polardbx_sql::expr::{BinOp, Expr};
    let mut rng = rng_for("between_equals_conjunction");
    for _ in 0..CASES * 2 {
        let (v, lo, hi) = (
            rng.gen_range(-50i64..50),
            rng.gen_range(-50i64..50),
            rng.gen_range(-50i64..50),
        );
        let row = Row::new(vec![Value::Int(v)]);
        let between = Expr::Between {
            expr: Box::new(Expr::ColumnIdx(0)),
            low: Box::new(Expr::int(lo)),
            high: Box::new(Expr::int(hi)),
        };
        let conj = Expr::binary(
            BinOp::And,
            Expr::binary(BinOp::Ge, Expr::ColumnIdx(0), Expr::int(lo)),
            Expr::binary(BinOp::Le, Expr::ColumnIdx(0), Expr::int(hi)),
        );
        assert_eq!(between.eval_bool(&row).unwrap(), conj.eval_bool(&row).unwrap());
    }
}

/// The vectorized columnar filter kernels agree with row-at-a-time predicate
/// evaluation for every comparison operator.
#[test]
fn columnar_filters_match_row_filters() {
    use polardbx_columnar::kernels::{filter_cmp, CmpOp};
    use polardbx_columnar::ColumnData;
    use polardbx_common::DataType;

    let mut rng = rng_for("columnar_filters_match_row_filters");
    let ops = [CmpOp::Eq, CmpOp::Neq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
    for _ in 0..CASES {
        let data: Vec<Option<i64>> = (0..rng.gen_range(1..60))
            .map(|_| if rng.gen_bool(0.2) { None } else { Some(rng.gen_range(-50i64..50)) })
            .collect();
        let constant = rng.gen_range(-50i64..50);
        let op = ops[rng.gen_range(0..ops.len())];
        let mut col = ColumnData::new(DataType::Int);
        for v in &data {
            col.push(&v.map(Value::Int).unwrap_or(Value::Null)).unwrap();
        }
        let sel: Vec<u32> = (0..data.len() as u32).collect();
        let fast = filter_cmp(&col, &sel, op, &Value::Int(constant)).unwrap();
        let slow: Vec<u32> = data
            .iter()
            .enumerate()
            .filter(|(_, v)| {
                v.is_some_and(|x| match op {
                    CmpOp::Eq => x == constant,
                    CmpOp::Neq => x != constant,
                    CmpOp::Lt => x < constant,
                    CmpOp::Le => x <= constant,
                    CmpOp::Gt => x > constant,
                    CmpOp::Ge => x >= constant,
                })
            })
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(fast, slow);
    }
}

/// Traffic-control fingerprints are literal-insensitive.
#[test]
fn fingerprint_literal_insensitive() {
    use polardbx::traffic::fingerprint;
    let mut rng = rng_for("fingerprint_literal_insensitive");
    for _ in 0..CASES {
        let (a, b) = (rng.gen_range(0i64..100000), rng.gen_range(0i64..100000));
        let s1 = rand_string(&mut rng, b"abcdefghijklmnopqrstuvwxyz", 8);
        let s2 = rand_string(&mut rng, b"abcdefghijklmnopqrstuvwxyz", 8);
        assert_eq!(
            fingerprint(&format!("SELECT * FROM t WHERE id = {a} AND name = '{s1}'")),
            fingerprint(&format!("SELECT * FROM t WHERE id = {b} AND name = '{s2}'"))
        );
    }
}

/// `PaxosFrame::decode` never panics on arbitrary bytes — corrupt or
/// truncated network input becomes a structured error.
#[test]
fn frame_decode_never_panics() {
    let mut rng = rng_for("frame_decode_never_panics");
    for _ in 0..CASES * 5 {
        let n = rng.gen_range(0..256);
        let data: Vec<u8> = (0..n).map(|_| rng.gen()).collect();
        let mut bytes = bytes::Bytes::from(data);
        let _ = polardbx_wal::PaxosFrame::decode(&mut bytes);
    }
}

/// Redo-record decoding never panics on arbitrary bytes either.
#[test]
fn redo_decode_never_panics() {
    let mut rng = rng_for("redo_decode_never_panics");
    for _ in 0..CASES * 5 {
        let n = rng.gen_range(0..128);
        let data: Vec<u8> = (0..n).map(|_| rng.gen()).collect();
        let _ = polardbx_wal::RedoPayload::decode_all(bytes::Bytes::from(data));
    }
}

/// Frames round-trip through encode/decode for arbitrary payload sizes up to
/// the 16 KB cap, and corruption of any single byte is detected.
#[test]
fn frame_roundtrip_and_corruption_detection() {
    use polardbx_wal::{Mtr, PaxosFrame, RedoPayload};
    let mut rng = rng_for("frame_roundtrip_and_corruption_detection");
    for _ in 0..CASES / 2 {
        let payload_len = rng.gen_range(1usize..2048);
        let epoch: u64 = rng.gen();
        let corrupt_at: usize = rng.gen();
        let mtr = Mtr::single(RedoPayload::Insert {
            trx: TrxId(1),
            table: polardbx_common::TableId(1),
            key: Key::encode(&[Value::Int(1)]),
            row: bytes::Bytes::from(vec![0xAB; payload_len]),
        });
        let frame = PaxosFrame::from_mtrs(epoch, 0, polardbx_common::Lsn(0), &[mtr]);
        let wire = frame.encode();
        let mut ok = wire.clone();
        assert_eq!(PaxosFrame::decode(&mut ok).unwrap(), frame);
        // Flip one payload byte: checksum must catch it.
        let mut corrupted = wire.to_vec();
        let idx = polardbx_wal::FRAME_HEADER_LEN + corrupt_at % payload_len.max(1);
        if idx < corrupted.len() {
            corrupted[idx] ^= 0x01;
            let mut b = bytes::Bytes::from(corrupted);
            assert!(PaxosFrame::decode(&mut b).is_err());
        }
    }
}

// ------------------------------------------------------------------------
// Vectorized-engine differential tests: the morsel-driven batch engine must
// be row-for-row equivalent to the seed row engine (`execute_plan`) on
// randomized tables and plans — including NULL group/join keys, mixed
// types, empty and heavily skewed partitions, and error cases.

fn diff_rand_pred(rng: &mut StdRng, width: usize, str_col: usize) -> polardbx_sql::expr::Expr {
    use polardbx_sql::expr::{BinOp, Expr};
    let cmp_ops = [BinOp::Eq, BinOp::Neq, BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge];
    match rng.gen_range(0..6) {
        0 => {
            // Column ⊗ literal, sometimes flipped, sometimes type-mismatched
            // (both engines must agree on "cannot compare" errors too).
            let col = Expr::ColumnIdx(rng.gen_range(0..width));
            let lit = match rng.gen_range(0..5) {
                0 => Expr::Literal(Value::Double(rng.gen_range(-30.0..30.0))),
                1 => Expr::Literal(Value::Str(rand_string(rng, b"abc", 2))),
                2 => Expr::Literal(Value::Null),
                _ => Expr::int(rng.gen_range(-40..40)),
            };
            let op = cmp_ops[rng.gen_range(0..cmp_ops.len())];
            if rng.gen_bool(0.3) {
                Expr::binary(op, lit, col)
            } else {
                Expr::binary(op, col, lit)
            }
        }
        1 => {
            let lo = rng.gen_range(-40..20);
            Expr::Between {
                expr: Box::new(Expr::ColumnIdx(rng.gen_range(0..width))),
                low: Box::new(Expr::int(lo)),
                high: Box::new(Expr::int(lo + rng.gen_range(0..40))),
            }
        }
        2 => Expr::IsNull {
            expr: Box::new(Expr::ColumnIdx(rng.gen_range(0..width))),
            negated: rng.gen_bool(0.5),
        },
        3 => {
            // LIKE over the string column (NULL operands are an error in
            // both engines); occasionally over a non-string column.
            let c = if rng.gen_bool(0.8) { str_col } else { rng.gen_range(0..width) };
            let pat = match rng.gen_range(0..3) {
                0 => format!("{}%", rand_string(rng, b"abc", 1)),
                1 => format!("%{}", rand_string(rng, b"abc", 1)),
                _ => format!("%{}%", rand_string(rng, b"abc", 1)),
            };
            Expr::Like { expr: Box::new(Expr::ColumnIdx(c)), pattern: pat }
        }
        _ => {
            // Conjunction (exercises in-order short-circuit semantics).
            let a = diff_rand_pred(rng, width, str_col);
            let b = diff_rand_pred(rng, width, str_col);
            Expr::binary(BinOp::And, a, b)
        }
    }
}

fn diff_rand_aggregate(
    rng: &mut StdRng,
    input: polardbx_sql::plan::LogicalPlan,
    width: usize,
) -> polardbx_sql::plan::LogicalPlan {
    use polardbx_sql::expr::{AggFunc, BinOp, Expr};
    use polardbx_sql::plan::{AggSpec, LogicalPlan};
    // Group keys: empty (global), the NULL-laden column, or a composite.
    let group_by: Vec<Expr> = match rng.gen_range(0..4) {
        0 => vec![],
        1 => vec![Expr::ColumnIdx(1)],
        2 => vec![Expr::ColumnIdx(1), Expr::ColumnIdx(rng.gen_range(0..width))],
        _ => vec![Expr::binary(
            BinOp::Mul,
            Expr::ColumnIdx(rng.gen_range(0..2)),
            Expr::int(rng.gen_range(1..4)),
        )],
    };
    let funcs = [AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max];
    let naggs = rng.gen_range(1..4);
    let aggs: Vec<AggSpec> = (0..naggs)
        .map(|_| {
            let func = funcs[rng.gen_range(0..funcs.len())];
            let arg = match rng.gen_range(0..4) {
                0 => None,
                1 => Some(Expr::binary(
                    BinOp::Mul,
                    Expr::ColumnIdx(rng.gen_range(0..width)),
                    Expr::ColumnIdx(rng.gen_range(0..width)),
                )),
                _ => Some(Expr::ColumnIdx(rng.gen_range(0..width))),
            };
            let distinct = arg.is_some() && rng.gen_bool(0.2);
            AggSpec { func, arg, distinct }
        })
        .collect();
    let names = (0..group_by.len() + aggs.len()).map(|i| format!("c{i}")).collect();
    LogicalPlan::Aggregate { input: Box::new(input), group_by, aggs, names }
}

fn diff_rand_plan(rng: &mut StdRng, width: usize) -> polardbx_sql::plan::LogicalPlan {
    use polardbx_sql::expr::{BinOp, Expr};
    use polardbx_sql::plan::LogicalPlan;
    let scan = || LogicalPlan::Scan {
        table: "t".into(),
        schema: (0..width).map(|i| format!("t.c{i}")).collect(),
    };
    let filtered = |rng: &mut StdRng| LogicalPlan::Filter {
        input: Box::new(scan()),
        predicate: diff_rand_pred(rng, width, 3),
    };
    let base = match rng.gen_range(0..5) {
        0 => filtered(rng),
        1 => {
            // Projection mixing pass-through columns and arithmetic.
            let exprs: Vec<Expr> = (0..rng.gen_range(1..4))
                .map(|_| match rng.gen_range(0..3) {
                    0 => Expr::ColumnIdx(rng.gen_range(0..width)),
                    1 => Expr::binary(
                        BinOp::Add,
                        Expr::ColumnIdx(rng.gen_range(0..width)),
                        Expr::int(rng.gen_range(-5..5)),
                    ),
                    _ => Expr::binary(
                        BinOp::Mul,
                        Expr::ColumnIdx(rng.gen_range(0..2)),
                        Expr::ColumnIdx(rng.gen_range(0..2)),
                    ),
                })
                .collect();
            let names = (0..exprs.len()).map(|i| format!("p{i}")).collect();
            LogicalPlan::Project { input: Box::new(filtered(rng)), exprs, names }
        }
        2 => {
            let input = filtered(rng);
            diff_rand_aggregate(rng, input, width)
        }
        3 => {
            // Self-join on the NULL-laden column (NULL keys must match like
            // the row engine's encoded keys), optional residual filter.
            let filter = rng.gen_bool(0.4).then(|| {
                Expr::binary(
                    BinOp::Lt,
                    Expr::ColumnIdx(0),
                    Expr::ColumnIdx(width), // left id < right id
                )
            });
            LogicalPlan::Join {
                left: Box::new(filtered(rng)),
                right: Box::new(scan()),
                on: vec![(1, 1)],
                filter,
            }
        }
        _ => diff_rand_aggregate(rng, scan(), width),
    };
    if rng.gen_bool(0.3) {
        // Sort by every output column: group-emission order is unspecified,
        // so a limit cutting inside a tie range would be nondeterministic
        // unless equal-sorting rows are identical.
        let key_width = base.schema().len();
        let sorted = LogicalPlan::Sort {
            input: Box::new(base),
            keys: (0..key_width)
                .map(|k| (Expr::ColumnIdx(k), rng.gen_bool(0.5)))
                .collect(),
        };
        LogicalPlan::Limit { input: Box::new(sorted), n: rng.gen_range(0..30) }
    } else {
        base
    }
}

fn diff_canon(rows: &[Row]) -> Vec<String> {
    let mut out: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
    out.sort();
    out
}

/// Serial vectorized execution is equivalent to the seed row engine on
/// randomized plans over mixed-type data with NULLs — identical result
/// multisets when both succeed, and agreement on failure.
#[test]
fn vectorized_engine_matches_row_engine() {
    use polardbx_executor::operators::MemTables;
    use polardbx_executor::{execute_plan, execute_vectorized, ExecCtx};

    let mut rng = rng_for("vectorized_engine_matches_row_engine");
    let width = 4;
    for case in 0..CASES {
        // Random partitioning: empty partitions and size skew included.
        let nparts = rng.gen_range(1..5);
        let mut id = 0i64;
        let parts: Vec<Vec<Row>> = (0..nparts)
            .map(|p| {
                let n = if p == 0 { rng.gen_range(0..90) } else { rng.gen_range(0..30) };
                (0..n)
                    .map(|_| {
                        id += 1;
                        Row::new(vec![
                            Value::Int(id),
                            if rng.gen_bool(0.2) {
                                Value::Null
                            } else {
                                Value::Int(rng.gen_range(-3..3))
                            },
                            if rng.gen_bool(0.15) {
                                Value::Null
                            } else {
                                Value::Double((rng.gen_range(-40..40) as f64) * 0.5)
                            },
                            if rng.gen_bool(0.15) {
                                Value::Null
                            } else {
                                Value::Str(rand_string(&mut rng, b"abc", 3))
                            },
                        ])
                    })
                    .collect()
            })
            .collect();
        let mut mem = MemTables::new();
        mem.add("t", parts);
        let plan = diff_rand_plan(&mut rng, width);
        let ctx = ExecCtx::unrestricted();
        let slow = execute_plan(&plan, &mem, &ctx);
        let fast = execute_vectorized(&plan, &mem, &ctx);
        match (slow, fast) {
            (Ok(s), Ok(f)) => {
                assert_eq!(diff_canon(&s), diff_canon(&f), "case {case}: {plan:?}")
            }
            (Err(_), Err(_)) => {}
            (s, f) => panic!("case {case}: engines disagree on success: {s:?} vs {f:?}\nplan: {plan:?}"),
        }
    }
}

// ------------------------------------------------------------------------
// Group-commit differential test: concurrent transactions committed through
// the grouped durability pipeline must be equivalent to the same
// transactions committed serially with one flush each — no lost, torn,
// duplicated or interleaved redo, the flushed LSN covering the whole log
// with no sink holes (extends the PR 2 WAL-race regression), and identical
// visible engine state.

/// Grouped concurrent commits ≡ serial per-transaction commits.
#[test]
fn grouped_commits_equivalent_to_serial() {
    use polardbx_common::{Lsn, TableId, TenantId};
    use polardbx_storage::engine::{LocalDurability, SyncLocalDurability};
    use polardbx_storage::{StorageEngine, WriteOp};
    use polardbx_wal::{LogBuffer, LogSink, RedoPayload, VecSink};
    use std::collections::HashMap;
    use std::sync::Arc;

    fn trx_of(r: &RedoPayload) -> TrxId {
        match r {
            RedoPayload::Insert { trx, .. }
            | RedoPayload::Update { trx, .. }
            | RedoPayload::Delete { trx, .. }
            | RedoPayload::TxnCommit { trx, .. }
            | RedoPayload::TxnAbort { trx } => *trx,
            other => panic!("unexpected record in this workload: {other:?}"),
        }
    }

    // Decode a sink's contiguous byte run into per-transaction record
    // sequences, asserting along the way that each transaction's records
    // form exactly one contiguous run (group commit may interleave
    // *transactions*, never records *within* one).
    fn per_txn_runs(bytes: Vec<u8>) -> HashMap<TrxId, Vec<RedoPayload>> {
        let records = RedoPayload::decode_all(bytes::Bytes::from(bytes)).unwrap();
        let mut runs: HashMap<TrxId, Vec<RedoPayload>> = HashMap::new();
        let mut closed: Vec<TrxId> = Vec::new();
        let mut current: Option<TrxId> = None;
        for r in records {
            let t = trx_of(&r);
            if current != Some(t) {
                if let Some(prev) = current.replace(t) {
                    closed.push(prev);
                }
                assert!(!closed.contains(&t), "records of {t} split across runs");
            }
            runs.entry(t).or_default().push(r);
        }
        runs
    }

    let mut rng = rng_for("grouped_commits_equivalent_to_serial");
    for case in 0..8 {
        // Transaction specs on disjoint keys: id, row values, abort flag.
        let specs: Vec<(u64, Vec<i64>, bool)> = (1..=rng.gen_range(20u64..60))
            .map(|t| {
                let n = rng.gen_range(1..5);
                let vals = (0..n)
                    .map(|j| (t as i64) * 100 + (j as i64) * 7 + rng.gen_range(0..5))
                    .collect();
                (t, vals, rng.gen_bool(0.2))
            })
            .collect();

        let apply = |engine: &Arc<StorageEngine>, spec: &(u64, Vec<i64>, bool)| {
            let (t, vals, abort) = spec;
            let trx = TrxId(*t);
            engine.begin(trx, 0);
            for &v in vals {
                engine
                    .write(
                        trx,
                        TableId(1),
                        Key::encode(&[Value::Int(v)]),
                        WriteOp::Insert(Row::new(vec![Value::Int(v)])),
                    )
                    .unwrap();
            }
            if *abort {
                engine.abort(trx);
            } else {
                engine.commit(trx, *t).unwrap();
            }
        };

        // Reference: every transaction serially, one flush each.
        let serial_sink = VecSink::new();
        let serial = StorageEngine::with_durability(SyncLocalDurability::new(LogBuffer::new(
            Arc::clone(&serial_sink) as Arc<dyn LogSink>,
        )));
        serial.create_table(TableId(1), TenantId(1));
        for spec in &specs {
            apply(&serial, spec);
        }

        // Subject: the same transactions from 4 concurrent committers
        // through the group-commit pipeline.
        let grouped_sink = VecSink::new();
        let grouped_log = LogBuffer::new(Arc::clone(&grouped_sink) as Arc<dyn LogSink>);
        let grouped =
            StorageEngine::with_durability(LocalDurability::new(Arc::clone(&grouped_log)));
        grouped.create_table(TableId(1), TenantId(1));
        std::thread::scope(|s| {
            for w in 0..4usize {
                let grouped = Arc::clone(&grouped);
                let specs = &specs;
                s.spawn(move || {
                    for spec in specs.iter().skip(w).step_by(4) {
                        apply(&grouped, spec);
                    }
                });
            }
        });

        // The grouped log is fully durable and hole-free: every appended
        // byte was flushed and the sink writes tile the whole range.
        assert_eq!(grouped_log.flushed(), grouped_log.head(), "case {case}");
        assert_eq!(
            grouped_sink.contiguous().len() as u64,
            grouped_log.flushed().raw() - Lsn::ZERO.raw(),
            "case {case}: sink has holes below the flushed LSN"
        );

        // Same per-transaction redo, each transaction's records contiguous.
        assert_eq!(
            per_txn_runs(serial_sink.contiguous()),
            per_txn_runs(grouped_sink.contiguous()),
            "case {case}: redo differs between serial and grouped commits"
        );

        // Identical visible state at the latest snapshot.
        for (t, vals, abort) in &specs {
            for &v in vals {
                let key = Key::encode(&[Value::Int(v)]);
                let s = serial.read(TableId(1), &key, u64::MAX, None).unwrap();
                let g = grouped.read(TableId(1), &key, u64::MAX, None).unwrap();
                assert_eq!(s, g, "case {case}: txn {t} key {v} differs");
                assert_eq!(s.is_some(), !abort, "case {case}: txn {t} visibility");
            }
        }
        assert_eq!(
            serial.count_rows(TableId(1), u64::MAX).unwrap(),
            grouped.count_rows(TableId(1), u64::MAX).unwrap()
        );
    }
}

/// Morsel-driven MPP execution on the persistent pool matches serial
/// execution on integer-only data (exact in any merge order), including
/// NULL group/join keys, skewed and empty partitions.
#[test]
fn mpp_vectorized_matches_serial_on_skewed_partitions() {
    use polardbx_executor::operators::MemTables;
    use polardbx_executor::{execute_plan, ExecCtx, MppExecutor, WorkloadManager};
    use std::sync::Arc;

    let mut rng = rng_for("mpp_vectorized_matches_serial_on_skewed_partitions");
    let width = 3;
    let pool = WorkloadManager::new(4, 4, 1.0, 1.0);
    let mpp = MppExecutor::with_pool(4, pool);
    for case in 0..CASES / 4 {
        // Heavy skew: partition 0 carries most rows; some partitions empty.
        let nparts = rng.gen_range(2..6);
        let mut id = 0i64;
        let parts: Vec<Vec<Row>> = (0..nparts)
            .map(|p| {
                let n = if p == 0 { rng.gen_range(200..600) } else { rng.gen_range(0..60) };
                (0..n)
                    .map(|_| {
                        id += 1;
                        Row::new(vec![
                            Value::Int(id),
                            if rng.gen_bool(0.2) {
                                Value::Null
                            } else {
                                Value::Int(rng.gen_range(-4..4))
                            },
                            Value::Int(rng.gen_range(-100..100)),
                        ])
                    })
                    .collect()
            })
            .collect();
        let mut mem = MemTables::new();
        mem.add("t", parts);
        let provider: Arc<dyn polardbx_executor::TableProvider> = Arc::new(mem);
        let plan = diff_rand_plan(&mut rng, width);
        let ctx = ExecCtx::unrestricted();
        let slow = execute_plan(&plan, provider.as_ref(), &ctx);
        let fast = mpp.execute(&plan, &provider, &ctx);
        match (slow, fast) {
            (Ok(s), Ok(f)) => {
                assert_eq!(diff_canon(&s), diff_canon(&f), "case {case}: {plan:?}")
            }
            (Err(_), Err(_)) => {}
            (s, f) => panic!("case {case}: engines disagree on success: {s:?} vs {f:?}\nplan: {plan:?}"),
        }
    }
}
