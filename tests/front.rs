//! Tier-1 tests for the SQL front door: the full statement surface over
//! the wire, typed error classification across the boundary, per-tenant
//! admission, quota release on abrupt disconnect, and the lost-update
//! rehome test lifted from the in-process SQL path to real TCP clients.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use polardbx::{ClusterConfig, PolarDbx};
use polardbx_common::testseed::{format_seed, seed_from_env};
use polardbx_common::{Error, TenantQuotas, Value};
use polardbx_front::wire::{self, ErrCode, Frame, FrameReader};
use polardbx_front::{FrontClient, FrontDoor};
use rand::{Rng, SeedableRng};

fn cluster() -> PolarDbx {
    PolarDbx::build(ClusterConfig { dns: 2, default_shards: 4, ..Default::default() })
        .unwrap()
}

/// Cluster + front door + one unlimited tenant, ready for clients.
fn front_cluster() -> (PolarDbx, FrontDoor, u64) {
    let db = cluster();
    let tenant = db.register_tenant("app", TenantQuotas::unlimited());
    let front = FrontDoor::start_default(db.clone()).unwrap();
    (db, front, tenant.0)
}

#[test]
fn wire_smoke_covers_the_full_statement_surface() {
    let (db, front, tenant) = front_cluster();
    let mut c = FrontClient::connect(front.addr(), tenant).unwrap();

    // DDL and DML over the wire.
    c.execute(
        "CREATE TABLE w (id BIGINT NOT NULL, name VARCHAR(16), score DOUBLE, \
         PRIMARY KEY (id)) PARTITION BY HASH(id) PARTITIONS 4",
    )
    .unwrap();
    for i in 0..10 {
        let n = c
            .execute(&format!("INSERT INTO w (id, name, score) VALUES ({i}, 'n{i}', {i}.5)"))
            .unwrap();
        assert_eq!(n, 1);
    }

    // SELECT comes back as typed rows.
    let rows = c.query("SELECT name, score FROM w WHERE id = 7").unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].get(0).unwrap(), &Value::str("n7"));
    assert_eq!(rows[0].get(1).unwrap(), &Value::Double(7.5));

    // Aggregates and multi-row updates round-trip.
    let rows = c.query("SELECT COUNT(*) FROM w WHERE score >= 5.0").unwrap();
    assert_eq!(rows[0].get(0).unwrap(), &Value::Int(5));
    assert_eq!(c.execute("UPDATE w SET score = score + 1 WHERE id < 3").unwrap(), 3);
    assert_eq!(c.execute("DELETE FROM w WHERE id = 9").unwrap(), 1);

    // Prepare/Execute: second prepare of the same text is a cache hit and
    // the handle replays without re-parsing.
    let (stmt, cached) = c.prepare("SELECT name FROM w WHERE id = 1").unwrap();
    assert!(!cached);
    let (stmt2, cached) = c.prepare("SELECT name FROM w WHERE id = 1").unwrap();
    assert!(cached, "identical text must hit the statement cache");
    assert_eq!(stmt, stmt2);
    let rows = c.execute_prepared(stmt).unwrap();
    assert_eq!(rows[0].get(0).unwrap(), &Value::str("n1"));
    // Prepared DML executes repeatedly.
    let (upd, _) = c.prepare("UPDATE w SET score = score + 1 WHERE id = 2").unwrap();
    assert_eq!(c.execute_prepared_count(upd).unwrap(), 1);
    assert_eq!(c.execute_prepared_count(upd).unwrap(), 1);
    // Closing invalidates the handle with a typed (non-retryable) error.
    c.close_stmt(stmt).unwrap();
    let err = c.execute_prepared(stmt).unwrap_err();
    assert!(!err.is_retryable());

    // Typed errors across the wire.
    let err = c.query("SELEKT garbage").unwrap_err();
    assert!(matches!(err, Error::Parse { .. }), "parse failure: {err:?}");
    let err = c.query("SELECT x FROM nosuch").unwrap_err();
    assert!(matches!(err, Error::UnknownTable { ref name } if name == "nosuch"));
    let err = c.query("SELECT nosuchcol FROM w").unwrap_err();
    assert!(matches!(err, Error::Schema { .. }), "schema failure: {err:?}");

    // The connection survives all those errors; clean goodbye works.
    assert_eq!(c.query("SELECT COUNT(*) FROM w").unwrap()[0].get(0).unwrap(), &Value::Int(9));
    c.quit().unwrap();

    drop(front);
    db.shutdown();
}

#[test]
fn handshake_rejects_unknown_tenant_and_bad_version() {
    let (db, front, tenant) = front_cluster();

    // Unknown tenant: typed handshake failure.
    let err = FrontClient::connect(front.addr(), 4242).unwrap_err();
    assert!(!err.is_retryable());

    // Wrong protocol version: speak the raw frames.
    let stream = TcpStream::connect(front.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = FrameReader::new(stream);
    wire::write_frame(&mut writer, &Frame::Hello { version: 999, tenant }).unwrap();
    match reader.read_frame().unwrap() {
        Frame::Err { code, retryable, .. } => {
            assert_eq!(code, ErrCode::Handshake);
            assert!(!retryable);
        }
        other => panic!("expected handshake rejection, got {other:?}"),
    }

    // A non-Hello first frame is also a handshake failure.
    let stream = TcpStream::connect(front.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = FrameReader::new(stream);
    wire::write_frame(&mut writer, &Frame::Query { sql: "SELECT 1".into() }).unwrap();
    match reader.read_frame().unwrap() {
        Frame::Err { code, .. } => assert_eq!(code, ErrCode::Handshake),
        other => panic!("expected handshake rejection, got {other:?}"),
    }

    drop(front);
    db.shutdown();
}

#[test]
fn throttled_tenant_gets_retryable_bounce_over_the_wire() {
    let db = cluster();
    let hot = db.register_tenant("hot", TenantQuotas::rate_limited(1.0, 2.0));
    let quiet = db.register_tenant("quiet", TenantQuotas::unlimited());
    let front = FrontDoor::start_default(db.clone()).unwrap();

    let mut hc = FrontClient::connect(front.addr(), hot.0).unwrap();
    let mut qc = FrontClient::connect(front.addr(), quiet.0).unwrap();
    hc.execute("CREATE TABLE h (id BIGINT NOT NULL, PRIMARY KEY (id))").unwrap();

    // Hammer the hot tenant past its burst: a throttle must arrive, and it
    // must rebuild client-side as a retryable Error::Throttled carrying
    // the tenant-rate rule.
    let mut throttles = 0u64;
    for i in 0..20 {
        match hc.execute(&format!("INSERT INTO h (id) VALUES ({i})")) {
            Ok(_) => {}
            Err(Error::Throttled { ref rule }) => {
                assert!(rule.contains("tenant-rate"), "rule: {rule}");
                throttles += 1;
            }
            Err(e) => panic!("unexpected error: {e:?}"),
        }
    }
    assert!(throttles > 0, "hot tenant must get throttled");
    assert!(
        Error::Throttled { rule: "x".into() }.is_retryable(),
        "throttle contract: retryable"
    );

    // The quiet tenant sails through the same instant.
    for _ in 0..50 {
        qc.query("SELECT COUNT(*) FROM h").unwrap();
    }
    assert_eq!(front.admission().stats(quiet).throttled_rate, 0);
    assert!(front.admission().stats(hot).throttled_rate > 0);
    assert_eq!(front.metrics().throttled.get(), throttles);

    drop(front);
    db.shutdown();
}

#[test]
fn abrupt_disconnect_releases_connection_quota() {
    let db = cluster();
    let tenant =
        db.register_tenant("capped", TenantQuotas::unlimited().with_max_connections(1));
    let front = FrontDoor::start_default(db.clone()).unwrap();

    // Hold the single slot, then vanish without a Quit frame.
    let c1 = FrontClient::connect(front.addr(), tenant.0).unwrap();
    let err = FrontClient::connect(front.addr(), tenant.0).unwrap_err();
    assert!(matches!(err, Error::Throttled { ref rule } if rule.contains("tenant-connections")));
    drop(c1); // TCP close, no goodbye

    // The handler notices the close and the ConnPermit drop frees the
    // slot; a new connection must succeed shortly after.
    let deadline = 200;
    let mut connected = None;
    for _ in 0..deadline {
        match FrontClient::connect(front.addr(), tenant.0) {
            Ok(c) => {
                connected = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    assert!(connected.is_some(), "abrupt drop must release the connection slot");
    assert_eq!(front.admission().stats(tenant).connections, 1);

    drop(connected);
    drop(front);
    db.shutdown();
}

/// The lost-update rehome test lifted to the wire: concurrent TCP clients
/// hammer `UPDATE v = v + 1` through the front door while the placement
/// layer re-homes every shard twice. Every acked update must be visible
/// in the final row — an ack that didn't survive the cutover would show
/// up as `final < sum(applied)`.
#[test]
fn concurrent_wire_clients_survive_rehome_without_lost_updates() {
    let seed = seed_from_env(0x0F2E_4A3D);
    eprintln!("front rehome seed: POLARDBX_TEST_SEED={}", format_seed(seed));

    let (db, front, tenant) = front_cluster();
    let mut admin = FrontClient::connect(front.addr(), tenant).unwrap();
    admin
        .execute(
            "CREATE TABLE t (id BIGINT NOT NULL, v INT, PRIMARY KEY (id)) \
             PARTITION BY HASH(id) PARTITIONS 4",
        )
        .unwrap();
    for i in 0..8 {
        admin.execute(&format!("INSERT INTO t (id, v) VALUES ({i}, 0)")).unwrap();
    }

    // One wire client per row: each client is the sole writer of its row,
    // so its acked count must equal the row's final value exactly (the
    // same single-writer-per-key contract as the in-process template
    // test, scaled out to concurrent TCP connections).
    const CLIENTS: usize = 4;
    let stop = Arc::new(AtomicBool::new(false));
    let addr = front.addr();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|w| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || -> (u64, Option<Error>) {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ (w as u64));
                let mut c = match FrontClient::connect(addr, tenant) {
                    Ok(c) => c,
                    Err(e) => return (0, Some(e)),
                };
                let sql = format!("UPDATE t SET v = v + 1 WHERE id = {w}");
                let mut applied = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match c.execute(&sql) {
                        Ok(1) => applied += 1,
                        Ok(n) => {
                            return (applied, Some(Error::invalid(format!("matched {n} rows"))))
                        }
                        Err(e) if e.is_retryable() => {
                            // Back off a hair so the drain can win.
                            std::thread::sleep(Duration::from_micros(
                                rng.gen_range(50..500),
                            ));
                        }
                        Err(e) => return (applied, Some(e)),
                    }
                }
                (applied, None)
            })
        })
        .collect();

    // Two full rounds of re-homes across every shard while the wire
    // clients hammer. A drain can time out retryably under load.
    let schema = db.gms().table("t").unwrap();
    let dns = db.gms().dns();
    for _round in 0..2 {
        for shard in 0..4u32 {
            let cur = db.gms().shard_dn(schema.id, shard).unwrap();
            let dest = *dns.iter().find(|&&d| d != cur).unwrap();
            for attempt in 0.. {
                match db.rehome_shard("t", shard, dest) {
                    Ok(_) => break,
                    Err(_) if attempt < 20 => std::thread::sleep(Duration::from_millis(2)),
                    Err(e) => panic!("rehome never succeeded: {e:?}"),
                }
            }
            assert_eq!(db.gms().shard_dn(schema.id, shard).unwrap(), dest);
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    stop.store(true, Ordering::Relaxed);

    let mut total = 0u64;
    for (w, handle) in workers.into_iter().enumerate() {
        let (applied, fatal) = handle.join().unwrap();
        assert!(fatal.is_none(), "wire writer {w} hit non-retryable error: {fatal:?}");
        total += applied;
        let rows = admin.query(&format!("SELECT v FROM t WHERE id = {w}")).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].get(0).unwrap(),
            &Value::Int(applied as i64),
            "client {w}: every acked wire UPDATE must survive the re-homes"
        );
    }
    assert!(total > 0, "writers made progress across cutovers");

    admin.quit().unwrap();
    drop(front);
    db.shutdown();
}
