//! Distributed-systems integration tests spanning the consensus, storage,
//! transaction and multi-tenancy crates: cross-DC commits riding Paxos,
//! leader failover without losing committed data, per-tenant parallel
//! recovery, and snapshot isolation under real network latency.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use polardbx_common::testseed::{format_seed, seed_from_env};
use polardbx_common::{DcId, IdGenerator, Key, NodeId, Row, TableId, TenantId, TrxId, Value};
use polardbx_consensus::{GroupConfig, PaxosGroup, Role};
use polardbx_hlc::Hlc;
use polardbx_simnet::{Handler, LatencyMatrix, SimNet};
use polardbx_storage::engine::RedoApplier;
use polardbx_storage::{StorageEngine, WriteOp};
use polardbx_txn::{
    checker, Coordinator, DnService, ResolverConfig, ResolverHandle, TxnConfig, TxnMsg,
    WireWriteOp,
};

fn key(n: i64) -> Key {
    Key::encode(&[Value::Int(n)])
}

fn row(n: i64) -> Row {
    Row::new(vec![Value::Int(n), Value::str("v")])
}

/// Fabric, coordinator, DN services and their resolver threads.
type ResolverCluster = (Arc<SimNet<TxnMsg>>, Coordinator, Vec<Arc<DnService>>, Vec<ResolverHandle>);

/// Two DNs in two DCs with running in-doubt resolvers, plus a CN in DC1
/// whose coordinator records commit decisions on DN1.
fn resolver_cluster() -> ResolverCluster {
    struct CnStub;
    impl Handler<TxnMsg> for CnStub {
        fn handle(&self, _f: NodeId, m: TxnMsg) -> TxnMsg {
            m
        }
    }
    let net = SimNet::new(LatencyMatrix::zero());
    let resolver_cfg = ResolverConfig {
        interval: Duration::from_millis(10),
        in_doubt_after: Duration::from_millis(40),
        abandon_active_after: Duration::from_millis(80),
    };
    let mut dns = Vec::new();
    let mut resolvers = Vec::new();
    for i in 1..=2u64 {
        let engine = StorageEngine::in_memory();
        engine.create_table(TableId(1), TenantId(1));
        let dn = DnService::new(NodeId(i), engine, Hlc::new());
        net.register(NodeId(i), DcId(i), dn.clone() as Arc<dyn Handler<TxnMsg>>);
        resolvers.push(dn.start_resolver(Arc::clone(&net), resolver_cfg).unwrap());
        dns.push(dn);
    }
    net.register(NodeId(9), DcId(1), Arc::new(CnStub));
    let coord = Coordinator::new(NodeId(9), Arc::clone(&net), Hlc::new(), Arc::new(IdGenerator::new()))
        .with_decision_log(NodeId(1))
        .with_config(TxnConfig {
            max_attempts: 2,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
        });
    (net, coord, dns, resolvers)
}

fn await_drained(dns: &[Arc<DnService>], timeout: Duration) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    while std::time::Instant::now() < deadline {
        if dns.iter().all(|d| !d.engine.has_active_txns()) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

/// A partition that strikes during prepare leaves one participant ACTIVE
/// (it never saw the prepare) and everything must drain after heal: the
/// reachable participant aborts on command, the stranded one expires its
/// abandoned transaction locally.
#[test]
fn partition_during_prepare_drains_after_heal() {
    let (net, coord, dns, _resolvers) = resolver_cluster();
    let mut txn = coord.begin();
    txn.write(NodeId(1), TableId(1), key(1), WireWriteOp::Insert(row(1))).unwrap();
    txn.write(NodeId(2), TableId(1), key(2), WireWriteOp::Insert(row(2))).unwrap();
    net.partition(DcId(1), DcId(2));
    let err = txn.commit().unwrap_err();
    assert!(
        matches!(err, polardbx_common::Error::Network { .. } | polardbx_common::Error::Timeout { .. }),
        "partitioned prepare must fail: {err:?}"
    );
    net.heal(DcId(1), DcId(2));
    assert!(await_drained(&dns, Duration::from_secs(3)), "active txns must drain after heal");
    // Atomicity: the aborted transaction left nothing behind on either DN.
    assert_eq!(dns[0].engine.read(TableId(1), &key(1), u64::MAX, None).unwrap(), None);
    assert_eq!(dns[1].engine.read(TableId(1), &key(2), u64::MAX, None).unwrap(), None);
}

/// A partition that strikes between the commit decision and phase two
/// strands a PREPARED participant. Its resolver must find the commit in
/// the decision log once the partition heals — the transaction lands as
/// committed everywhere, never "half gone".
#[test]
fn partition_during_commit_decision_drains_after_heal() {
    let (net, coord, dns, _resolvers) = resolver_cluster();
    // Sever the cross-DC link exactly after the decision is logged and
    // before phase-two posts go out.
    let net_fp = Arc::clone(&net);
    let coord = coord.with_failpoint(Arc::new(move |point| {
        if point == "txn.after_decision" {
            net_fp.partition(DcId(1), DcId(2));
        }
    }));
    let mut txn = coord.begin();
    txn.write(NodeId(1), TableId(1), key(1), WireWriteOp::Insert(row(1))).unwrap();
    txn.write(NodeId(2), TableId(1), key(2), WireWriteOp::Insert(row(2))).unwrap();
    let commit_ts = txn.commit().expect("decision was logged; commit succeeds");
    // DN2 is stranded PREPARED behind the partition.
    std::thread::sleep(Duration::from_millis(30));
    net.heal(DcId(1), DcId(2));
    assert!(await_drained(&dns, Duration::from_secs(3)), "prepared txn must drain after heal");
    // Atomicity: the committed transaction is fully visible on BOTH DNs.
    assert_eq!(
        dns[0].engine.read(TableId(1), &key(1), commit_ts, None).unwrap(),
        Some(row(1))
    );
    assert_eq!(
        dns[1].engine.read(TableId(1), &key(2), commit_ts, None).unwrap(),
        Some(row(2))
    );
    assert!(dns[1].metrics.in_doubt_commits.get() >= 1, "resolver must have used the log");
}

/// A DN whose commits ride a 3-DC Paxos group keeps all committed rows
/// visible on the follower after a leader failover — and the follower's
/// replayed state matches the leader's.
#[test]
fn paxos_backed_engine_survives_failover() {
    let group = PaxosGroup::build(
        GroupConfig::three_dc(1).with_latency(LatencyMatrix::uniform(Duration::from_micros(200))),
    );
    let leader = group.leader().unwrap();

    // The follower maintains a replica engine by replaying applied frames.
    let replica_engine = StorageEngine::in_memory();
    replica_engine.create_table(TableId(1), TenantId(1));
    let applier = Arc::new(RedoApplier::new(Arc::clone(&replica_engine)));
    {
        let applier = Arc::clone(&applier);
        group.replicas[1].set_apply(Box::new(move |frame| {
            let _ = applier.apply_bytes(frame.payload.clone());
        }));
    }

    let engine = StorageEngine::with_durability(polardbx::durability::PaxosDurability::new(
        Arc::clone(&leader),
    ));
    engine.create_table(TableId(1), TenantId(1));
    for i in 0..30i64 {
        let trx = TrxId(100 + i as u64);
        engine.begin(trx, i as u64);
        engine.write(trx, TableId(1), key(i), WriteOp::Insert(row(i))).unwrap();
        engine.commit(trx, 1000 + i as u64).unwrap();
    }

    // Kill the leader's DC; elect the follower.
    group.net.partition(DcId(1), DcId(2));
    group.net.partition(DcId(1), DcId(3));
    group.replicas[1].campaign();
    let deadline = std::time::Instant::now() + Duration::from_secs(3);
    while group.replicas[1].status().role != Role::Leader
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(group.replicas[1].status().role, Role::Leader);

    // Every committed row is present in the follower's replayed engine.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    loop {
        let n = replica_engine.count_rows(TableId(1), u64::MAX).unwrap();
        if n == 30 || std::time::Instant::now() > deadline {
            assert_eq!(n, 30, "failover must not lose committed rows");
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Snapshot isolation holds under realistic cross-DC latency: the bank
/// harness's audits always see the conserved total with 1 ms RTTs.
#[test]
fn bank_invariant_under_cross_dc_latency() {
    struct CnStub;
    impl Handler<TxnMsg> for CnStub {
        fn handle(&self, _f: NodeId, m: TxnMsg) -> TxnMsg {
            m
        }
    }
    let net = SimNet::new(LatencyMatrix {
        intra_dc: Duration::from_micros(20),
        inter_dc: Duration::from_micros(200),
        jitter: 0.05,
    });
    let mut dns = Vec::new();
    for i in 1..=3u64 {
        let engine = StorageEngine::in_memory();
        engine.create_table(TableId(1), TenantId(1));
        let dn = DnService::new(NodeId(i), engine, Hlc::new());
        net.register(NodeId(i), DcId(i), dn as Arc<dyn Handler<TxnMsg>>);
        dns.push(NodeId(i));
    }
    let ids = Arc::new(IdGenerator::new());
    let mut coords = Vec::new();
    for c in 0..3u64 {
        let me = NodeId(100 + c);
        net.register(me, DcId(1 + c), Arc::new(CnStub));
        coords.push(Arc::new(Coordinator::new(me, Arc::clone(&net), Hlc::new(), Arc::clone(&ids))));
    }
    let harness = Arc::new(checker::BankHarness { table: TableId(1), dns, accounts: 9, initial: 100 });
    harness.seed(&coords[0]).unwrap();
    std::thread::sleep(Duration::from_millis(3));
    let seed = seed_from_env(0xBA2C_0000);
    eprintln!("bank_invariant_under_cross_dc_latency: POLARDBX_TEST_SEED={}", format_seed(seed));
    let totals = checker::stress_seeded(Arc::clone(&harness), coords.clone(), 3, 10, 2, seed);
    assert!(!totals.is_empty());
    for t in totals {
        assert_eq!(
            t,
            harness.expected_total(),
            "fractured read under latency (replay with POLARDBX_TEST_SEED={})",
            format_seed(seed)
        );
    }
}

/// A failed MT node's tenants recover in parallel onto two survivors from
/// its private redo log, and the survivors serve them afterwards.
#[test]
fn mt_node_failure_takeover() {
    use polardbx_mt::{recovery, BindingTable, MtRwNode};

    let bindings = Arc::new(BindingTable::new(Duration::from_secs(30)));
    let failed = MtRwNode::new(NodeId(1), Arc::clone(&bindings));
    bindings.bind(TenantId(1), NodeId(1));
    bindings.bind(TenantId(2), NodeId(1));
    bindings.acquire_lease(NodeId(1));
    failed.create_table(TableId(1), TenantId(1)).unwrap();
    failed.create_table(TableId(2), TenantId(2)).unwrap();
    for i in 0..25i64 {
        failed
            .write_row(TenantId(1), TableId(1), key(i), WriteOp::Insert(row(i)))
            .unwrap();
        failed
            .write_row(TenantId(2), TableId(2), key(i), WriteOp::Insert(row(i)))
            .unwrap();
    }
    // The node dies; two survivors divide its tenants and replay its log.
    let log = bytes::Bytes::from(failed.log_sink.contiguous());
    let survivor_a = MtRwNode::new(NodeId(2), Arc::clone(&bindings));
    let survivor_b = MtRwNode::new(NodeId(3), Arc::clone(&bindings));
    let mut table_tenants = HashMap::new();
    table_tenants.insert(TableId(1), TenantId(1));
    table_tenants.insert(TableId(2), TenantId(2));
    let mut takeover = HashMap::new();
    takeover.insert(TenantId(1), Arc::clone(&survivor_a.engine));
    takeover.insert(TenantId(2), Arc::clone(&survivor_b.engine));
    let counts = recovery::parallel_recover(log, &table_tenants, &takeover).unwrap();
    assert_eq!(counts.len(), 2);

    // Rebind and serve.
    bindings.bind(TenantId(1), NodeId(2));
    bindings.bind(TenantId(2), NodeId(3));
    bindings.acquire_lease(NodeId(2));
    bindings.acquire_lease(NodeId(3));
    assert_eq!(survivor_a.count_rows(TableId(1)).unwrap(), 25);
    assert_eq!(survivor_b.count_rows(TableId(2)).unwrap(), 25);
    survivor_a
        .write_row(TenantId(1), TableId(1), key(100), WriteOp::Insert(row(100)))
        .unwrap();
    assert_eq!(survivor_a.count_rows(TableId(1)).unwrap(), 26);
}

/// Session consistency on RO replicas: a read carrying the RW's session
/// token never sees a stale snapshot even when the replica applies slowly.
#[test]
fn session_consistency_on_lagging_replica() {
    use polardbx_storage::{RwNode, SessionToken};

    let rw = RwNode::new(NodeId(1));
    rw.create_table(TableId(1), TenantId(1));
    let ro = rw.add_ro();
    ro.set_apply_delay(Duration::from_millis(25));
    rw.execute_write(TrxId(1), 0, 10, TableId(1), key(1), WriteOp::Insert(row(1))).unwrap();
    let token = rw.session_token();
    // Without the token a racing reader could see emptiness; with it the
    // replica blocks until caught up.
    let got = ro.read(TableId(1), &key(1), token, Duration::from_secs(2)).unwrap();
    assert_eq!(got, Some(row(1)));
    // A fabricated future token times out rather than serving stale data.
    let err = ro.wait_for(SessionToken(polardbx_common::Lsn(u64::MAX)), Duration::from_millis(30));
    assert!(err.is_err());
}

/// The DN engine running over PolarFS: commits survive one chunk-server
/// failure (2/3 quorum) and fail cleanly when quorum is lost, resuming
/// when the fleet recovers.
#[test]
fn engine_over_polarfs_with_sn_failures() {
    use polardbx_polarfs::{PolarFs, PolarFsConfig, VolumeLogSink};
    use polardbx_wal::LogSink;

    let fs = PolarFs::new(PolarFsConfig { chunk_size: 1 << 16, ..Default::default() });
    let volume = fs.create_volume(DcId(1)).unwrap();
    let sink = VolumeLogSink::new(Arc::clone(&volume), 0);
    let engine = StorageEngine::with_sink(sink.clone() as Arc<dyn LogSink>);
    engine.create_table(TableId(1), TenantId(1));

    let write_one = |trx: u64, k: i64| -> polardbx_common::Result<()> {
        engine.begin(TrxId(trx), trx);
        engine.write(TrxId(trx), TableId(1), key(k), WriteOp::Insert(row(k)))?;
        engine.commit(TrxId(trx), trx + 1)?;
        Ok(())
    };
    write_one(1, 1).unwrap();

    // One SN down: majority still holds, commits continue.
    let sns = fs.servers(DcId(1));
    sns[0].set_down(true);
    write_one(2, 2).unwrap();

    // Two SNs down: quorum lost — the commit must fail AND roll back.
    sns[1].set_down(true);
    let err = write_one(3, 3).unwrap_err();
    assert!(matches!(err.root(), polardbx_common::Error::NoQuorum { .. }), "{err}");
    assert_eq!(engine.read(TableId(1), &key(3), u64::MAX, None).unwrap(), None);

    // Fleet recovers: service resumes; earlier data intact.
    sns[0].set_down(false);
    sns[1].set_down(false);
    write_one(4, 4).unwrap();
    assert_eq!(engine.count_rows(TableId(1), u64::MAX).unwrap(), 3);

    // The durable log is decodable end-to-end (recovery path).
    let head_len = 4096usize;
    let bytes = sink.read(polardbx_common::Lsn(0), head_len).unwrap();
    assert!(bytes.iter().any(|&b| b != 0), "log region persisted");
}

/// Crash recovery: replaying a DN's durable log into a fresh engine
/// reconstructs exactly the committed state (aborted work is dropped).
#[test]
fn crash_recovery_replays_committed_state() {
    use polardbx_wal::{LogSink, VecSink};

    let sink = VecSink::new();
    let engine = StorageEngine::with_sink(sink.clone() as Arc<dyn LogSink>);
    engine.create_table(TableId(1), TenantId(1));
    for i in 0..10i64 {
        engine.begin(TrxId(i as u64 + 1), i as u64);
        engine
            .write(TrxId(i as u64 + 1), TableId(1), key(i), WriteOp::Insert(row(i)))
            .unwrap();
        engine.commit(TrxId(i as u64 + 1), 100 + i as u64).unwrap();
    }
    // A transaction that dies before commit.
    engine.begin(TrxId(99), 50);
    engine.write(TrxId(99), TableId(1), key(999), WriteOp::Insert(row(999))).unwrap();
    // (no commit — crash now)

    let recovered = StorageEngine::in_memory();
    recovered.create_table(TableId(1), TenantId(1));
    let applier = RedoApplier::new(Arc::clone(&recovered));
    applier.apply_bytes(bytes::Bytes::from(sink.contiguous())).unwrap();
    assert_eq!(recovered.count_rows(TableId(1), u64::MAX).unwrap(), 10);
    assert_eq!(recovered.read(TableId(1), &key(999), u64::MAX, None).unwrap(), None);
    // Snapshots replay faithfully too: nothing visible before first commit.
    assert_eq!(recovered.count_rows(TableId(1), 99).unwrap(), 0);
    assert_eq!(recovered.count_rows(TableId(1), 104).unwrap(), 5);
}
