//! Chaos suite: 2PC and consensus under seeded fault plans.
//!
//! Every scenario here injects faults through the simnet fabric's
//! [`FaultPlan`] — seeded message loss, duplication and node crashes —
//! and asserts the end-to-end safety properties the paper's protocols
//! promise: transactional atomicity (all-or-nothing on every DN), no
//! transaction left PREPARED forever, replication convergence after the
//! fabric heals, and bit-for-bit determinism when the same seed is
//! replayed.
//!
//! Fault seeds honor `POLARDBX_TEST_SEED` (hex or decimal); each scenario
//! announces its seed on stderr, which the test harness surfaces exactly
//! when the test fails — copy it into the env var to replay.

use std::sync::Arc;
use std::time::Duration;

use polardbx_common::testseed::{format_seed, seed_from_env};
use polardbx_common::{DcId, IdGenerator, Key, NodeId, Row, TableId, TenantId, Value};
use polardbx_consensus::{GroupConfig, PaxosGroup, Role};
use polardbx_hlc::Hlc;
use polardbx_simnet::{FaultPlan, Handler, LatencyMatrix, LinkFaults, SimNet};
use polardbx_storage::StorageEngine;
use polardbx_txn::{
    Coordinator, Decision, DnService, ResolverConfig, ResolverHandle, TxnConfig, TxnMsg,
    WireWriteOp,
};

fn key(n: i64) -> Key {
    Key::encode(&[Value::Int(n)])
}

fn row(n: i64) -> Row {
    Row::new(vec![Value::Int(n), Value::str("v")])
}

struct CnStub;
impl Handler<TxnMsg> for CnStub {
    fn handle(&self, _f: NodeId, m: TxnMsg) -> TxnMsg {
        m
    }
}

/// Three DNs in three DCs (NodeId 1..=3), a CN at NodeId(9) in DC1, and a
/// coordinator that records commit decisions on DN1 (same DC as the CN, so
/// decision logging itself rides a reliable link).
fn chaos_cluster() -> (Arc<SimNet<TxnMsg>>, Coordinator, Vec<Arc<DnService>>) {
    let net = SimNet::new(LatencyMatrix::zero());
    let mut dns = Vec::new();
    for i in 1..=3u64 {
        let engine = StorageEngine::in_memory();
        engine.create_table(TableId(1), TenantId(1));
        let dn = DnService::new(NodeId(i), engine, Hlc::new());
        net.register(NodeId(i), DcId(i), dn.clone() as Arc<dyn Handler<TxnMsg>>);
        dns.push(dn);
    }
    net.register(NodeId(9), DcId(1), Arc::new(CnStub));
    let coord = Coordinator::new(
        NodeId(9),
        Arc::clone(&net),
        Hlc::new(),
        Arc::new(IdGenerator::new()),
    )
    .with_decision_log(NodeId(1))
    .with_config(TxnConfig {
        max_attempts: 5,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(8),
    });
    (net, coord, dns)
}

fn start_resolvers(net: &Arc<SimNet<TxnMsg>>, dns: &[Arc<DnService>]) -> Vec<ResolverHandle> {
    let cfg = ResolverConfig {
        interval: Duration::from_millis(10),
        in_doubt_after: Duration::from_millis(50),
        abandon_active_after: Duration::from_millis(150),
    };
    dns.iter().map(|d| d.start_resolver(Arc::clone(net), cfg).unwrap()).collect()
}

fn await_drained(dns: &[Arc<DnService>], timeout: Duration) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    while std::time::Instant::now() < deadline {
        if dns.iter().all(|d| !d.engine.has_active_txns() && d.in_doubt_count() == 0) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

/// The acceptance scenario: cross-DC links drop >= 5% of messages and
/// duplicate another 5%, resolvers run throughout, and every transaction
/// must still land all-or-nothing with nothing stuck once the fabric heals.
#[test]
fn two_pc_atomic_under_lossy_duplicating_links() {
    let seed = seed_from_env(0xC4A0_5EED);
    eprintln!("two_pc_atomic_under_lossy_duplicating_links: POLARDBX_TEST_SEED={}", format_seed(seed));
    let (net, coord, dns) = chaos_cluster();
    let _resolvers = start_resolvers(&net, &dns);
    net.set_fault_plan(
        FaultPlan::new(seed).with_cross_dc(LinkFaults::lossy(0.08).with_duplicate(0.05)),
    );

    const TXNS: i64 = 25;
    let mut outcomes = Vec::new();
    for i in 0..TXNS {
        let mut txn = coord.begin();
        // Statement shipping also rides the lossy links: a failed write
        // aborts the transaction, which must still be all-or-nothing.
        let wrote = txn
            .write(NodeId(2), TableId(1), key(100 + i), WireWriteOp::Insert(row(i)))
            .and_then(|_| txn.write(NodeId(3), TableId(1), key(100 + i), WireWriteOp::Insert(row(i))))
            .is_ok();
        if wrote {
            outcomes.push(txn.commit().ok());
        } else {
            txn.abort();
            outcomes.push(None);
        }
    }

    // Heal and let the resolvers settle whatever the chaos left behind.
    net.clear_fault_plan();
    assert!(await_drained(&dns, Duration::from_secs(5)), "nothing may stay active or in doubt");

    // Atomicity: each transaction is either on BOTH cross-DC participants
    // or on neither; a successful commit must be visible everywhere.
    for i in 0..TXNS {
        let on2 = dns[1].engine.read(TableId(1), &key(100 + i), u64::MAX, None).unwrap();
        let on3 = dns[2].engine.read(TableId(1), &key(100 + i), u64::MAX, None).unwrap();
        assert_eq!(on2.is_some(), on3.is_some(), "txn {i} torn across DNs");
        if outcomes[i as usize].is_some() {
            assert!(on2.is_some(), "txn {i} committed but invisible");
        }
    }
    assert!(
        net.fault_stats.dropped_requests.get()
            + net.fault_stats.dropped_replies.get()
            + net.fault_stats.duplicated_calls.get()
            > 0,
        "the plan must actually have injected faults: {}",
        net.fault_stats.report()
    );
    assert!(
        coord.metrics().rpc_retries.get() > 0,
        "lossy links must have forced coordinator retries"
    );
}

/// Coordinator crashes BEFORE the commit decision reaches the log: the
/// outcome is in doubt, nobody may unilaterally commit, and the resolvers
/// must settle on presumed abort via the decision log.
#[test]
fn coordinator_crash_before_decision_presumes_abort() {
    let (net, coord, dns) = chaos_cluster();
    let _resolvers = start_resolvers(&net, &dns);
    let net_fp = Arc::clone(&net);
    let coord = coord.with_failpoint(Arc::new(move |point| {
        if point == "txn.before_decision" {
            net_fp.crash(NodeId(9));
        }
    }));

    let mut txn = coord.begin();
    let trx = txn.id();
    txn.write(NodeId(2), TableId(1), key(1), WireWriteOp::Insert(row(1))).unwrap();
    txn.write(NodeId(3), TableId(1), key(2), WireWriteOp::Insert(row(2))).unwrap();
    txn.commit().expect_err("a coordinator dead before logging cannot report success");

    assert!(await_drained(&dns, Duration::from_secs(5)), "in-doubt txn must resolve");
    assert_eq!(dns[1].engine.read(TableId(1), &key(1), u64::MAX, None).unwrap(), None);
    assert_eq!(dns[2].engine.read(TableId(1), &key(2), u64::MAX, None).unwrap(), None);
    assert_eq!(
        dns[0].recorded_decision(trx),
        Some(Decision::Abort),
        "the arbiter must have presumed abort"
    );
    assert!(dns[0].metrics.presumed_aborts.get() >= 1);
    assert!(dns[1].metrics.in_doubt_aborts.get() + dns[2].metrics.in_doubt_aborts.get() >= 2);
}

/// Coordinator crashes AFTER logging the commit decision but before any
/// phase-two message leaves: every participant is stranded PREPARED and
/// must learn the commit from the decision log.
#[test]
fn coordinator_crash_after_decision_resolver_commits() {
    let (net, coord, dns) = chaos_cluster();
    let _resolvers = start_resolvers(&net, &dns);
    let net_fp = Arc::clone(&net);
    let coord = coord.with_failpoint(Arc::new(move |point| {
        if point == "txn.after_decision" {
            net_fp.crash(NodeId(9));
        }
    }));

    let mut txn = coord.begin();
    let trx = txn.id();
    txn.write(NodeId(2), TableId(1), key(1), WireWriteOp::Insert(row(1))).unwrap();
    txn.write(NodeId(3), TableId(1), key(2), WireWriteOp::Insert(row(2))).unwrap();
    let commit_ts = txn.commit().expect("the decision is durable; commit stands");

    assert!(await_drained(&dns, Duration::from_secs(5)), "prepared txns must resolve");
    assert_eq!(
        dns[1].engine.read(TableId(1), &key(1), commit_ts, None).unwrap(),
        Some(row(1)),
        "resolver must have committed from the log"
    );
    assert_eq!(
        dns[2].engine.read(TableId(1), &key(2), commit_ts, None).unwrap(),
        Some(row(2)),
        "resolver must have committed from the log"
    );
    assert_eq!(dns[0].recorded_decision(trx), Some(Decision::Commit(commit_ts)));
    assert!(dns[1].metrics.in_doubt_commits.get() + dns[2].metrics.in_doubt_commits.get() >= 2);
    assert!(net.fault_stats.blackholed.get() > 0, "the crashed CN must have been black-holed");
}

/// One full chaos run: seeded faults during a serialized workload, then
/// heal, then resolver-driven settlement. Returns everything observable
/// that must be identical across same-seed runs.
fn seeded_run(seed: u64) -> (Vec<bool>, Vec<(bool, bool)>, [u64; 5]) {
    let (net, coord, dns) = chaos_cluster();
    net.set_fault_plan(
        FaultPlan::new(seed).with_cross_dc(LinkFaults::lossy(0.10).with_duplicate(0.08)),
    );
    let mut outcomes = Vec::new();
    for i in 0..15i64 {
        let mut txn = coord.begin();
        let wrote = txn
            .write(NodeId(2), TableId(1), key(i), WireWriteOp::Insert(row(i)))
            .and_then(|_| txn.write(NodeId(3), TableId(1), key(i), WireWriteOp::Insert(row(i))))
            .is_ok();
        if wrote {
            outcomes.push(txn.commit().is_ok());
        } else {
            txn.abort();
            outcomes.push(false);
        }
    }
    let stats = [
        net.fault_stats.dropped_requests.get(),
        net.fault_stats.dropped_replies.get(),
        net.fault_stats.dropped_posts.get(),
        net.fault_stats.duplicated_calls.get(),
        net.fault_stats.duplicated_posts.get(),
    ];
    // Heal, then let resolvers settle the leftovers over reliable links.
    net.clear_fault_plan();
    let _resolvers = start_resolvers(&net, &dns);
    assert!(await_drained(&dns, Duration::from_secs(5)));
    let state = (0..15i64)
        .map(|i| {
            (
                dns[1].engine.read(TableId(1), &key(i), u64::MAX, None).unwrap().is_some(),
                dns[2].engine.read(TableId(1), &key(i), u64::MAX, None).unwrap().is_some(),
            )
        })
        .collect();
    (outcomes, state, stats)
}

/// Same seed, same chaos: commit outcomes, injected-fault counters and the
/// final visible state must replay bit-for-bit; a different seed must take
/// a different fault path.
#[test]
fn same_seed_replays_identical_chaos() {
    let seed = seed_from_env(0xD15EA5E);
    eprintln!("same_seed_replays_identical_chaos: POLARDBX_TEST_SEED={}", format_seed(seed));
    let a = seeded_run(seed);
    let b = seeded_run(seed);
    assert_eq!(a.0, b.0, "commit outcomes must be deterministic");
    assert_eq!(a.1, b.1, "final state must be deterministic");
    assert_eq!(a.2, b.2, "fault counters must be deterministic");
    assert!(a.2.iter().sum::<u64>() > 0, "the seed must actually inject faults");
    for (on2, on3) in &a.1 {
        assert_eq!(on2, on3, "atomicity must hold in every run");
    }
    let c = seeded_run(seed ^ 0x0DD_5EED);
    assert_ne!(a.2, c.2, "a different seed should walk a different fault path");
}

/// Group commit under chaos: concurrent committers drive 2PC transactions
/// whose DN-side durability rides the group-commit pipeline, over seeded
/// lossy, duplicating cross-DC links; mid-run the coordinator node crashes,
/// stranding in-flight transactions PREPARED on the DNs. After the fabric
/// heals, the PR 1 decision-log resolvers must settle every one of them
/// all-or-nothing, and the group committer's flush accounting must balance
/// (every durable commit released by exactly one flush, no flush lost).
///
/// The fault plan is seeded, so the injected fault path replays bit-for-bit;
/// every assertion is an interleaving-independent safety property, so the
/// test passes deterministically under any thread schedule.
#[test]
fn group_commit_chaos_settles_in_flight_txns() {
    use std::sync::atomic::{AtomicU64, Ordering};

    let seed = seed_from_env(0x6C0_FFEE);
    eprintln!("group_commit_chaos_settles_in_flight_txns: POLARDBX_TEST_SEED={}", format_seed(seed));
    let (net, coord, dns) = chaos_cluster();
    let _resolvers = start_resolvers(&net, &dns);
    net.set_fault_plan(
        FaultPlan::new(seed).with_cross_dc(LinkFaults::lossy(0.08).with_duplicate(0.05)),
    );

    // Crash the CN after a fixed number of commit decisions: whatever is
    // mid-2PC at that point is stranded PREPARED with its fate only in the
    // decision log.
    let commits_seen = Arc::new(AtomicU64::new(0));
    let net_fp = Arc::clone(&net);
    let commits_fp = Arc::clone(&commits_seen);
    let coord = Arc::new(coord.with_failpoint(Arc::new(move |point| {
        if point == "txn.before_decision" && commits_fp.fetch_add(1, Ordering::SeqCst) + 1 == 12 {
            net_fp.crash(NodeId(9));
        }
    })));

    const WORKERS: i64 = 4;
    const PER: i64 = 8;
    let outcomes: Vec<(i64, Option<u64>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                let coord = Arc::clone(&coord);
                s.spawn(move || {
                    let mut out = Vec::new();
                    for i in 0..PER {
                        let n = w * 100 + i;
                        let mut txn = coord.begin();
                        let wrote = txn
                            .write(NodeId(2), TableId(1), key(n), WireWriteOp::Insert(row(n)))
                            .and_then(|_| {
                                txn.write(NodeId(3), TableId(1), key(n), WireWriteOp::Insert(row(n)))
                            })
                            .is_ok();
                        if wrote {
                            out.push((n, txn.commit().ok()));
                        } else {
                            txn.abort();
                            out.push((n, None));
                        }
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });

    // Heal and let the resolvers settle everything the crash left behind.
    // Generous deadline: with the whole workspace test suite running in
    // parallel, resolver ticks can be descheduled for a long time.
    net.clear_fault_plan();
    assert!(
        await_drained(&dns, Duration::from_secs(20)),
        "every in-flight transaction must resolve via the decision log"
    );

    // Atomicity on the cross-DC participants; reported commits visible.
    for (n, outcome) in &outcomes {
        let on2 = dns[1].engine.read(TableId(1), &key(*n), u64::MAX, None).unwrap();
        let on3 = dns[2].engine.read(TableId(1), &key(*n), u64::MAX, None).unwrap();
        assert_eq!(on2.is_some(), on3.is_some(), "txn {n} torn across DNs");
        if outcome.is_some() {
            assert!(on2.is_some(), "txn {n} committed but invisible");
        }
    }

    // The chaos actually happened: faults injected, the CN black-holed.
    assert!(commits_seen.load(Ordering::SeqCst) >= 12, "the crash trigger must have fired");
    assert!(net.fault_stats.total_injected() > 0, "{}", net.fault_stats.report());
    assert!(net.fault_stats.blackholed.get() > 0, "the crashed CN must have been black-holed");

    // Group-commit accounting on every DN: prepares, commits and the
    // resolver's settlement storm all rode the group committer, every
    // durable call was released by exactly one flush, and no flush ran
    // without work.
    for (i, dn) in dns.iter().enumerate() {
        let m = dn.engine.wal_metrics().expect("DN engines group-commit");
        // DN1 (index 0) only arbitrates the decision log; DN2/DN3 are the
        // write participants and must have paid durable work.
        assert!(i == 0 || m.commits.get() > 0, "participant DN saw no durable work");
        assert!(m.flushes.get() <= m.commits.get());
        assert_eq!(
            m.group_size.sum(),
            m.commits.get(),
            "every group-committed batch must be released by exactly one flush"
        );
    }
}

fn paxos_payload(n: i64) -> polardbx_wal::Mtr {
    polardbx_wal::Mtr::single(polardbx_wal::RedoPayload::Insert {
        trx: polardbx_common::TrxId(1),
        table: TableId(1),
        key: key(n),
        row: bytes::Bytes::from(vec![b'x'; 32]),
    })
}

/// PolarFS under chaos: one chunk replica is black-holed mid-append (its
/// writes vanish while the majority keeps committing), then revived and
/// caught up. All three replicas must converge byte-identical over the
/// full appended span — the ParallelRaft §II-A durability contract.
#[test]
fn polarfs_replica_blackhole_converges_byte_identical() {
    use bytes::Bytes;
    use polardbx_polarfs::{ChunkId, ChunkServer, ParallelRaftGroup};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    let seed = seed_from_env(0xB1AC_401E);
    eprintln!(
        "polarfs_replica_blackhole_converges_byte_identical: POLARDBX_TEST_SEED={}",
        format_seed(seed)
    );
    let mut rng = StdRng::seed_from_u64(seed);

    let sns: Vec<_> = (0..3).map(|i| ChunkServer::new(NodeId(i), DcId(1))).collect();
    let g = ParallelRaftGroup::new(ChunkId { volume: 7, index: 0 }, sns, Duration::ZERO);

    let mut offset = 0u64;
    let append = |rng: &mut StdRng, offset: &mut u64| {
        let len = rng.gen_range(16..128usize);
        let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        g.write(*offset, Bytes::from(data)).expect("majority must persist the append");
        *offset += len as u64;
    };

    for _ in 0..10 {
        append(&mut rng, &mut offset);
    }
    g.replicas()[2].set_down(true);
    for _ in 0..20 {
        append(&mut rng, &mut offset);
    }
    g.replicas()[2].set_down(false);
    // Until catch-up runs, the revived replica has a hole where the
    // black-holed appends landed; ParallelRaft copies the span across.
    g.catch_up(2).unwrap();

    let span = offset as usize;
    let reference = g.replicas()[0].read(g.chunk(), 0, span).unwrap();
    assert!(!reference.iter().all(|b| *b == 0), "appends must have landed");
    for (i, r) in g.replicas().iter().enumerate() {
        assert_eq!(
            r.read(g.chunk(), 0, span).unwrap(),
            reference,
            "replica {i} diverged after catch-up (POLARDBX_TEST_SEED={})",
            format_seed(seed)
        );
    }
    assert_eq!(g.committed(), 30, "every append must have majority-committed");
}

/// Consensus under chaos: lossy, duplicating cross-DC links while the
/// leader streams log, then the leader crashes mid-replication, a follower
/// is elected, and after heal + restart every replica converges on the new
/// leader's log.
#[test]
fn consensus_converges_after_leader_crash_under_loss() {
    let seed = seed_from_env(0xBAD_CAB1E);
    eprintln!("consensus_converges_after_leader_crash_under_loss: POLARDBX_TEST_SEED={}", format_seed(seed));
    let g = PaxosGroup::build(GroupConfig::three_dc(1));
    g.net.set_fault_plan(
        FaultPlan::new(seed).with_cross_dc(LinkFaults::lossy(0.10).with_duplicate(0.10)),
    );
    let leader = g.leader().unwrap();
    // Heartbeats drive the ack/resend repair loop, so lost appends are
    // retransmitted even with no new writes in flight.
    let ticker = leader.start_ticker(Duration::from_millis(5), Duration::from_secs(30)).unwrap();
    for i in 0..20 {
        leader.replicate(&[paxos_payload(i)]).unwrap();
    }
    // Wait until the DC2 follower holds the full log (repair under loss):
    // a candidate missing majority-committed entries cannot win votes.
    let target = leader.status().last_lsn;
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while g.replicas[1].status().last_lsn < target && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(g.replicas[1].status().last_lsn >= target, "repair must backfill the follower");

    // Crash the leader mid-replication; a DC2 follower must take over.
    leader.stop_ticker();
    let _ = ticker.join();
    g.net.crash(leader.me);
    let follower = g.replicas[1].clone();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while follower.status().role != Role::Leader && std::time::Instant::now() < deadline {
        follower.campaign();
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(follower.status().role, Role::Leader, "follower must win the election");
    for i in 20..30 {
        follower.replicate(&[paxos_payload(i)]).unwrap();
    }

    // Heal: stop injecting faults, bring the old leader back. The new
    // leader's heartbeats drive the ack/resend repair loop, so the
    // restarted node gets backfilled even if an append races its restart.
    g.net.clear_fault_plan();
    g.net.restart(leader.me);
    let new_ticker = follower.start_ticker(Duration::from_millis(5), Duration::from_secs(30)).unwrap();
    let final_lsn = follower
        .replicate_and_wait(&[paxos_payload(99)], Duration::from_secs(2))
        .expect("healed group must commit");
    let converged = g.await_dlsn(final_lsn, Duration::from_secs(5));
    follower.stop_ticker();
    let _ = new_ticker.join();
    assert!(converged, "all replicas must converge");

    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while leader.status().role != Role::Follower && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(leader.status().role, Role::Follower, "deposed leader must step down");
    for r in &g.replicas {
        assert!(r.status().last_lsn >= final_lsn, "log must converge on {:?}", r.me);
    }
    assert!(follower.metrics.elections_won.get() >= 1);
    assert!(g.net.fault_stats.total_injected() > 0, "{}", g.net.fault_stats.report());
}
