//! Quickstart: spin up a PolarDB-X cluster, create a partitioned table,
//! run transactions and queries.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use polardbx::{ClusterConfig, PolarDbx};
use polardbx_common::DcId;

fn main() -> polardbx_common::Result<()> {
    // A small cluster: 1 DC, 2 CN servers, 2 DN instances.
    let db = PolarDbx::build(ClusterConfig { dns: 2, ..Default::default() })?;
    let session = db.connect(DcId(1));

    // DDL: hash-partitioned table (§II-B — hash avoids last-shard hotspots).
    session.execute(
        "CREATE TABLE accounts (
            id BIGINT NOT NULL,
            owner VARCHAR(32),
            balance DOUBLE,
            PRIMARY KEY (id)
        ) PARTITION BY HASH(id) PARTITIONS 8",
    )?;

    // DML: multi-row insert — rows scatter across shards; the insert is one
    // distributed transaction (2PC across the DNs it touches).
    let n = session.execute(
        "INSERT INTO accounts (id, owner, balance) VALUES
            (1, 'alice', 120.0),
            (2, 'bob', 80.0),
            (3, 'carol', 250.0),
            (4, 'dave', 45.0)",
    )?;
    println!("inserted {n} rows");

    // Point query (classified TP → routed to the RW path).
    let rows = session.query("SELECT owner, balance FROM accounts WHERE id = 3")?;
    println!("account 3: {}", rows[0]);

    // Cross-shard aggregate with classification visible.
    let (rows, class) =
        session.query_classified("SELECT COUNT(*), SUM(balance) FROM accounts")?;
    println!("count+sum = {} (classified {class:?})", rows[0]);

    // Update and verify.
    session.execute("UPDATE accounts SET balance = balance + 10 WHERE owner = 'bob'")?;
    let rows = session.query("SELECT balance FROM accounts WHERE id = 2")?;
    println!("bob after deposit: {}", rows[0]);

    // A global secondary index, maintained inside the same distributed
    // transaction as base-table writes (§II-B).
    session.execute("CREATE GLOBAL INDEX by_owner ON accounts (owner)")?;
    session.execute("INSERT INTO accounts (id, owner, balance) VALUES (5, 'erin', 60.0)")?;
    let rows =
        session.query("SELECT owner FROM __gsi_accounts_by_owner WHERE owner = 'erin'")?;
    println!("index entry for erin present: {}", !rows.is_empty());

    db.shutdown();
    Ok(())
}
