//! HTAP in one system: order entry (TP) and a live dashboard (AP) on the
//! same cluster, the scenario §I motivates ("BI reports can be timely
//! generated without affecting transactions from front-end applications").
//!
//! The optimizer classifies each request by estimated cost; TP statements
//! run on the RW path while the dashboard's aggregates run in the governed
//! AP pool against RO replicas and the in-memory column index (§VI).
//!
//! ```sh
//! cargo run --release --example htap_dashboard
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use polardbx::{ClusterConfig, PolarDbx};
use polardbx_common::DcId;
use polardbx_optimizer::WorkloadClass;

fn main() -> polardbx_common::Result<()> {
    let db = PolarDbx::build(ClusterConfig { dns: 2, ros_per_dn: 1, ..Default::default() })?;
    let session = db.connect(DcId(1));

    session.execute(
        "CREATE TABLE sales (
            id BIGINT NOT NULL,
            region BIGINT,
            amount DOUBLE,
            PRIMARY KEY (id)
        ) PARTITION BY HASH(id) PARTITIONS 8",
    )?;

    // Seed some history so the dashboard has data from the start.
    for chunk in 0..10 {
        let values: Vec<String> = (0..100)
            .map(|i| {
                let id = chunk * 100 + i;
                format!("({id}, {}, {}.5)", id % 5, (id % 97) + 1)
            })
            .collect();
        session
            .execute(&format!("INSERT INTO sales (id, region, amount) VALUES {}", values.join(",")))?;
    }
    db.gms().record_rows("sales", 10_000_000); // pretend production scale for the classifier
    db.enable_column_index("sales")?;

    // The optimizer tells TP from AP by cost:
    let (_, class) = session.query_classified("SELECT amount FROM sales WHERE id = 42")?;
    println!("point lookup classified:    {class:?}");
    assert_eq!(class, WorkloadClass::Tp);
    let (_, class) = session
        .query_classified("SELECT region, SUM(amount) FROM sales GROUP BY region")?;
    println!("dashboard query classified: {class:?}");
    assert_eq!(class, WorkloadClass::Ap);

    // Run both concurrently: order entry keeps inserting while the
    // dashboard refreshes; resource isolation keeps TP smooth.
    let stop = Arc::new(AtomicBool::new(false));
    let inserted = Arc::new(std::sync::atomic::AtomicU64::new(0));
    std::thread::scope(|s| {
        {
            let stop = Arc::clone(&stop);
            let inserted = Arc::clone(&inserted);
            let tp = db.connect(DcId(1));
            s.spawn(move || {
                let mut id = 1_000i64;
                while !stop.load(Ordering::Relaxed) {
                    id += 1;
                    if tp
                        .execute(&format!(
                            "INSERT INTO sales (id, region, amount) VALUES ({id}, {}, 9.5)",
                            id % 5
                        ))
                        .is_ok()
                    {
                        inserted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        let ap = db.connect(DcId(1));
        for refresh in 1..=5 {
            std::thread::sleep(Duration::from_millis(150));
            let mut rows = ap
                .query("SELECT region, COUNT(*) AS n, SUM(amount) AS total FROM sales GROUP BY region ORDER BY region")
                .unwrap();
            rows.truncate(5);
            println!("dashboard refresh #{refresh}:");
            for r in rows {
                println!("   region {r}");
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
    println!(
        "order entry stayed live the whole time: {} orders inserted during refreshes",
        inserted.load(Ordering::Relaxed)
    );

    db.shutdown();
    Ok(())
}
