//! SaaS multi-tenancy and live tenant migration (§V of the paper).
//!
//! A SaaS provider consolidates many subscriber tenants onto a few RW
//! nodes. When load grows, new RW nodes join and tenants migrate to them
//! in milliseconds — no table data moves, because storage is shared.
//!
//! ```sh
//! cargo run --release --example saas_elasticity
//! ```

use std::sync::Arc;
use std::time::Duration;

use polardbx_common::{Key, NodeId, Row, TableId, TenantId, Value};
use polardbx_mt::{migrate_tenant, BindingTable, DataDictionary, MtRwNode, Router};
use polardbx_storage::WriteOp;

fn main() -> polardbx_common::Result<()> {
    // Control plane: the shared binding table and data dictionary.
    let bindings = Arc::new(BindingTable::new(Duration::from_secs(30)));
    let dict = DataDictionary::new(NodeId(1));
    let router = Router::new(Arc::clone(&bindings));

    // Two RW nodes to start.
    for n in 1..=2u64 {
        router.add_node(MtRwNode::new(NodeId(n), Arc::clone(&bindings)));
        bindings.acquire_lease(NodeId(n));
    }

    // Six subscriber tenants, three per node, each with an orders table.
    for t in 1..=6u64 {
        let tenant = TenantId(t);
        bindings.bind(tenant, NodeId(1 + (t - 1) % 2));
        router.execute(tenant, |node| {
            node.create_table(TableId(t), tenant)?;
            for i in 0..200i64 {
                node.write_row(
                    tenant,
                    TableId(t),
                    Key::encode(&[Value::Int(i)]),
                    WriteOp::Insert(Row::new(vec![
                        Value::Int(i),
                        Value::Str(format!("order-{i} of tenant {t}")),
                    ])),
                )?;
            }
            Ok(())
        })?;
    }
    println!("6 tenants live on 2 RW nodes; load: {:?}", bindings.load_distribution());

    // Tenant 3 becomes hot — scale out: add a node, migrate the tenant.
    router.add_node(MtRwNode::new(NodeId(3), Arc::clone(&bindings)));
    bindings.acquire_lease(NodeId(3));
    let report = migrate_tenant(&router, &dict, &bindings, TenantId(3), NodeId(3))?;
    println!(
        "migrated tenant 3 in {:?} (client pause {:?}, {} dirty pages flushed) — zero rows copied",
        report.total, report.pause, report.pages_flushed
    );

    // Traffic follows the binding transparently.
    let rows = router.execute(TenantId(3), |node| {
        println!("tenant 3 now served by {}", node.id);
        node.count_rows(TableId(3))
    })?;
    println!("tenant 3 still sees all {rows} rows");

    // Writes to the old node are rejected — single-writer per tenant.
    let old = router.node(NodeId(1)).unwrap();
    let err = old.write_row(
        TenantId(3),
        TableId(3),
        Key::encode(&[Value::Int(999)]),
        WriteOp::Insert(Row::new(vec![Value::Int(999), Value::str("stale")])),
    );
    println!("write via old owner rejected: {}", err.unwrap_err());

    println!("final load: {:?}", bindings.load_distribution());
    Ok(())
}
