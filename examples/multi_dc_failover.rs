//! Cross-datacenter replication and failover (§III of the paper).
//!
//! A DN's redo log replicates through X-Paxos to three datacenters
//! (leader + follower + log-only "logger"). Transactions commit once a
//! majority of DCs persisted the log; when the leader's datacenter is
//! lost, the follower is elected and service continues without losing any
//! committed transaction.
//!
//! ```sh
//! cargo run --release --example multi_dc_failover
//! ```

use std::time::Duration;

use bytes::Bytes;
use polardbx_common::{DcId, Key, TableId, TrxId, Value};
use polardbx_consensus::{GroupConfig, PaxosGroup, Role};
use polardbx_simnet::LatencyMatrix;
use polardbx_wal::{Mtr, RedoPayload};

fn order_mtr(i: i64) -> Mtr {
    Mtr::new(vec![
        RedoPayload::Insert {
            trx: TrxId(i as u64),
            table: TableId(1),
            key: Key::encode(&[Value::Int(i)]),
            row: Bytes::from(format!("order #{i}")),
        },
        RedoPayload::TxnCommit { trx: TrxId(i as u64), commit_ts: i as u64 },
    ])
}

fn main() {
    // Three DCs at ~1 ms RTT: leader in DC1, follower in DC2, logger in DC3.
    let group = PaxosGroup::build(
        GroupConfig::three_dc(1)
            .with_latency(LatencyMatrix::paper_default()),
    );
    let leader = group.leader().unwrap();
    println!("leader: {} (epoch {})", leader.me, leader.status().epoch);

    // Commit 50 transactions; each blocks until a majority of DCs holds it.
    for i in 1..=50 {
        leader.replicate_and_wait(&[order_mtr(i)], Duration::from_secs(2)).unwrap();
    }
    let committed = leader.status().dlsn;
    println!("50 transactions durable across DCs; DLSN = {committed}");

    // Disaster: DC1 is cut off from the world.
    group.net.partition(DcId(1), DcId(2));
    group.net.partition(DcId(1), DcId(3));
    println!("DC1 partitioned away — old leader can no longer commit");
    let err = leader.replicate_and_wait(&[order_mtr(999)], Duration::from_millis(300));
    println!("  commit attempt on old leader: {:?}", err.err().map(|e| e.to_string()));

    // The DC2 follower campaigns; the DC3 logger votes (but can never win).
    group.replicas[1].campaign();
    let deadline = std::time::Instant::now() + Duration::from_secs(3);
    while group.replicas[1].status().role != Role::Leader
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    let new_leader = &group.replicas[1];
    assert_eq!(new_leader.status().role, Role::Leader);
    println!(
        "new leader elected in DC2 (epoch {}), log intact through {}",
        new_leader.status().epoch,
        new_leader.status().last_lsn
    );
    assert!(new_leader.status().last_lsn >= committed, "no committed data lost");

    // Service continues from DC2.
    for i in 51..=60 {
        new_leader.replicate_and_wait(&[order_mtr(i)], Duration::from_secs(2)).unwrap();
    }
    println!("10 more transactions committed under the new leader");

    // DC1 heals: the deposed leader truncates its unreplicated tail, evicts
    // conflicting dirty pages (cleanup callback) and re-syncs as follower.
    group.net.heal(DcId(1), DcId(2));
    group.net.heal(DcId(1), DcId(3));
    let deadline = std::time::Instant::now() + Duration::from_secs(3);
    while group.replicas[0].status().role != Role::Follower
        && std::time::Instant::now() < deadline
    {
        let _ = new_leader.replicate_and_wait(&[order_mtr(61)], Duration::from_secs(1));
        std::thread::sleep(Duration::from_millis(10));
    }
    println!(
        "old leader rejoined as {:?}, resynced to {}",
        group.replicas[0].status().role,
        group.replicas[0].status().last_lsn
    );
}
