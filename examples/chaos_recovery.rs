//! Chaos fabric demo: seeded fault injection + 2PC in-doubt recovery.
//!
//! Cross-DC links drop and duplicate messages under a seeded fault plan
//! while a coordinator runs two-phase commits against three DNs; then a
//! coordinator is crashed right after logging its commit decision, and
//! the participants' resolvers finish the transaction from the decision
//! log. The same seed replays the exact same fault sequence:
//!
//! ```sh
//! cargo run --release --example chaos_recovery [seed]
//! ```

use std::sync::Arc;
use std::time::Duration;

use polardbx_common::{DcId, IdGenerator, Key, NodeId, Row, TableId, TenantId, Value};
use polardbx_hlc::Hlc;
use polardbx_simnet::{FaultPlan, Handler, LatencyMatrix, LinkFaults, SimNet};
use polardbx_storage::StorageEngine;
use polardbx_txn::{
    Coordinator, DnService, ResolverConfig, TxnConfig, TxnMsg, WireWriteOp,
};

struct CnStub;
impl Handler<TxnMsg> for CnStub {
    fn handle(&self, _f: NodeId, m: TxnMsg) -> TxnMsg {
        m
    }
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(0xC4A0_5EED);

    // Three DNs in three DCs, a CN in DC1; commit decisions are recorded
    // on DN1 so in-doubt participants can settle without the coordinator.
    let net: Arc<SimNet<TxnMsg>> = SimNet::new(LatencyMatrix::zero());
    let mut dns = Vec::new();
    for i in 1..=3u64 {
        let engine = StorageEngine::in_memory();
        engine.create_table(TableId(1), TenantId(1));
        let dn = DnService::new(NodeId(i), engine, Hlc::new());
        net.register(NodeId(i), DcId(i), dn.clone() as Arc<dyn Handler<TxnMsg>>);
        dns.push(dn);
    }
    net.register(NodeId(9), DcId(1), Arc::new(CnStub));
    let resolver_cfg = ResolverConfig {
        interval: Duration::from_millis(10),
        in_doubt_after: Duration::from_millis(50),
        abandon_active_after: Duration::from_millis(150),
    };
    let _resolvers: Vec<_> =
        dns.iter().map(|d| d.start_resolver(Arc::clone(&net), resolver_cfg)).collect();
    let coord = Coordinator::new(
        NodeId(9),
        Arc::clone(&net),
        Hlc::new(),
        Arc::new(IdGenerator::new()),
    )
    .with_decision_log(NodeId(1))
    .with_config(TxnConfig {
        max_attempts: 5,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(8),
    });

    println!("== phase 1: 2PC under seeded chaos (seed {seed:#x}) ==");
    net.set_fault_plan(
        FaultPlan::new(seed).with_cross_dc(LinkFaults::lossy(0.08).with_duplicate(0.05)),
    );
    let (mut committed, mut aborted) = (0, 0);
    for i in 0..20i64 {
        let mut txn = coord.begin();
        let wrote = txn
            .write(NodeId(2), TableId(1), Key::encode(&[Value::Int(i)]),
                   WireWriteOp::Insert(Row::new(vec![Value::Int(i)])))
            .and_then(|_| txn.write(NodeId(3), TableId(1), Key::encode(&[Value::Int(i)]),
                                    WireWriteOp::Insert(Row::new(vec![Value::Int(i)]))))
            .is_ok();
        let ok = wrote && txn.commit().is_ok();
        if ok { committed += 1 } else { aborted += 1 }
    }
    println!("  {committed} committed, {aborted} aborted/in-doubt");
    println!("  fault stats: {}", net.fault_stats.report());
    println!("  coordinator: {}", coord.metrics().report());

    println!("== phase 2: coordinator crash after logging the decision ==");
    net.clear_fault_plan();
    net.register(NodeId(10), DcId(1), Arc::new(CnStub));
    let net_fp = Arc::clone(&net);
    let doomed = Coordinator::new(
        NodeId(10),
        Arc::clone(&net),
        Hlc::new(),
        Arc::new(IdGenerator::new()),
    )
    .with_decision_log(NodeId(1))
    .with_failpoint(Arc::new(move |point| {
        if point == "txn.after_decision" {
            println!("  !! crashing CN node10 at {point}");
            net_fp.crash(NodeId(10));
        }
    }));
    let mut txn = doomed.begin();
    let k = Key::encode(&[Value::Int(777)]);
    txn.write(NodeId(2), TableId(1), k.clone(), WireWriteOp::Insert(Row::new(vec![Value::Int(777)]))).unwrap();
    txn.write(NodeId(3), TableId(1), k.clone(), WireWriteOp::Insert(Row::new(vec![Value::Int(777)]))).unwrap();
    let commit_ts = txn.commit().expect("decision is durable before the crash");
    println!("  commit decided at ts {commit_ts}; phase-2 posts were black-holed");

    // The resolvers must finish the job from the decision log.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while std::time::Instant::now() < deadline
        && dns.iter().any(|d| d.engine.has_active_txns() || d.in_doubt_count() > 0)
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    for (i, dn) in dns.iter().enumerate() {
        assert!(!dn.engine.has_active_txns(), "DN{} still has active txns", i + 1);
    }
    let on2 = dns[1].engine.read(TableId(1), &k, commit_ts, None).unwrap();
    let on3 = dns[2].engine.read(TableId(1), &k, commit_ts, None).unwrap();
    assert!(on2.is_some() && on3.is_some(), "resolver must commit from the log");
    println!("  resolvers committed the stranded txn on DN2 and DN3");
    for (i, dn) in dns.iter().enumerate() {
        println!("  DN{}: {}", i + 1, dn.metrics.report());
    }
    println!("  fault stats: {}", net.fault_stats.report());
    println!("ok: no transaction left active or in doubt");
}
